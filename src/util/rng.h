#ifndef WAGG_UTIL_RNG_H
#define WAGG_UTIL_RNG_H

#include <cstdint>
#include <limits>

namespace wagg::util {

/// SplitMix64: used to seed the main generator and as a cheap standalone
/// mixer. Reference: Steele, Lea & Flood, "Fast splittable pseudorandom
/// number generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministic, fast, high-quality PRNG (xoshiro256**, Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator so it can be plugged into
/// <random> distributions, but the helpers below avoid libstdc++-version
/// dependence so results are reproducible across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire-style rejection
  /// to avoid modulo bias.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal() noexcept;

  /// Bernoulli(p).
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace wagg::util

#endif  // WAGG_UTIL_RNG_H
