#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace wagg::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) throw std::logic_error("Table::cell before row()");
  if (rows_.back().size() >= header_.size()) {
    throw std::logic_error("Table::cell: row wider than header");
  }
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      os << "| " << v << std::string(width[c] - v.size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace wagg::util
