#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "instance/basic.h"
#include "instance/extended.h"
#include "util/rng.h"

namespace wagg::workload {

namespace {

std::size_t grid_side(std::size_t n) {
  return static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
}

}  // namespace

FamilyRegistry FamilyRegistry::builtin() {
  FamilyRegistry registry;
  // The five bench_common.h families, parameterized exactly as before.
  registry.add("uniform", [](std::size_t n, std::uint64_t seed) {
    return instance::uniform_square(n, std::sqrt(static_cast<double>(n)),
                                    seed);
  });
  registry.add("cluster", [](std::size_t n, std::uint64_t seed) {
    return instance::clustered(std::max<std::size_t>(n / 16, 1), 16,
                               std::sqrt(static_cast<double>(n)) * 4.0, 0.1,
                               seed);
  });
  registry.add("grid", [](std::size_t n, std::uint64_t) {
    const auto side = grid_side(n);
    return instance::grid(side, side, 1.0);
  });
  registry.add("expchain", [](std::size_t n, std::uint64_t) {
    return instance::exponential_chain(std::min<std::size_t>(n, 900), 2.0);
  });
  registry.add("unitchain", [](std::size_t n, std::uint64_t) {
    return instance::unit_chain(n);
  });
  // Extended families. Radii scale with sqrt(n) so node density (and thus
  // typical MST link length) stays roughly constant across sizes, matching
  // the uniform family's convention.
  registry.add("annulus", [](std::size_t n, std::uint64_t seed) {
    const double outer = std::sqrt(static_cast<double>(n));
    return instance::annulus(n, outer / 3.0, outer, seed);
  });
  registry.add("twotier", [](std::size_t n, std::uint64_t seed) {
    const double fringe_radius = std::sqrt(static_cast<double>(n));
    return instance::two_tier(n / 2, n - n / 2, fringe_radius / 8.0,
                              fringe_radius, seed);
  });
  registry.add("noisygrid", [](std::size_t n, std::uint64_t seed) {
    const auto side = grid_side(n);
    return instance::perturbed_grid(side, side, 1.0, 0.25, seed);
  });
  return registry;
}

FamilyRegistry& FamilyRegistry::global() {
  static FamilyRegistry registry = builtin();
  return registry;
}

bool FamilyRegistry::has(const std::string& name) const {
  return families_.count(name) > 0;
}

std::vector<std::string> FamilyRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(families_.size());
  for (const auto& [name, generator] : families_) result.push_back(name);
  return result;
}

geom::Pointset FamilyRegistry::make(const std::string& name, std::size_t n,
                                    std::uint64_t seed) const {
  const auto it = families_.find(name);
  if (it == families_.end()) {
    throw std::invalid_argument("unknown family: " + name);
  }
  return it->second(n, seed);
}

void FamilyRegistry::add(std::string name, FamilyGenerator generator) {
  families_[std::move(name)] = std::move(generator);
}

core::PlannerConfig mode_config(core::PowerMode mode) {
  core::PlannerConfig cfg;
  cfg.power_mode = mode;
  cfg.sinr.alpha = 3.0;
  cfg.sinr.beta = 1.0;
  return cfg;
}

geom::Pointset make_family(const std::string& family, std::size_t n,
                           std::uint64_t seed) {
  return FamilyRegistry::global().make(family, n, seed);
}

core::PowerMode power_mode_from_string(const std::string& name) {
  if (name == "uniform") return core::PowerMode::kUniform;
  if (name == "linear") return core::PowerMode::kLinear;
  if (name == "oblivious") return core::PowerMode::kOblivious;
  if (name == "global") return core::PowerMode::kGlobal;
  throw std::invalid_argument("unknown power mode: " + name);
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::size_t parse_size(const std::string& token, const std::string& key) {
  // stoull accepts (and wraps) a leading minus; require plain digits.
  bool digits_only = !token.empty();
  for (const char c : token) digits_only = digits_only && c >= '0' && c <= '9';
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(token, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (!digits_only || consumed != token.size()) {
    throw std::invalid_argument("WorkloadSpec: " + key +
                                " is not a non-negative integer: " + token);
  }
  return static_cast<std::size_t>(value);
}

// One sizes= token: either a plain integer or a geometric sweep lo..hixF
// (e.g. 64..512x2 -> 64, 128, 256, 512).
void parse_sizes_token(const std::string& token,
                       std::vector<std::size_t>& sizes) {
  const auto dots = token.find("..");
  if (dots == std::string::npos) {
    sizes.push_back(parse_size(token, "sizes"));
    return;
  }
  const auto x = token.find('x', dots + 2);
  const std::size_t lo = parse_size(token.substr(0, dots), "sizes");
  const std::size_t hi = parse_size(
      token.substr(dots + 2,
                   (x == std::string::npos ? token.size() : x) - dots - 2),
      "sizes");
  const std::size_t factor =
      x == std::string::npos ? 2 : parse_size(token.substr(x + 1), "sizes");
  if (lo == 0 || hi < lo || factor < 2) {
    throw std::invalid_argument("WorkloadSpec: bad size sweep: " + token);
  }
  for (std::size_t n = lo;;) {
    sizes.push_back(n);
    if (n > hi / factor) break;  // next step would pass hi (or overflow)
    n *= factor;
  }
}

double parse_double(const std::string& token, const std::string& key) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != token.size() || token.empty()) {
    throw std::invalid_argument("WorkloadSpec: " + key +
                                " is not a number: " + token);
  }
  return value;
}

// The churn= value: comma-separated key:value pairs.
void parse_churn(const std::string& value, WorkloadSpec& spec) {
  for (const auto& part : split(value, ',')) {
    if (part.empty()) continue;
    const auto colon = part.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument(
          "WorkloadSpec: churn expects key:value pairs, got: " + part);
    }
    const std::string key = part.substr(0, colon);
    const std::string sub = part.substr(colon + 1);
    if (key == "epochs") {
      spec.churn.epochs = parse_size(sub, "churn epochs");
    } else if (key == "rate") {
      spec.churn.rate = parse_double(sub, "churn rate");
    } else if (key == "add") {
      spec.churn.add_weight = parse_double(sub, "churn add");
    } else if (key == "remove") {
      spec.churn.remove_weight = parse_double(sub, "churn remove");
    } else if (key == "move") {
      spec.churn.move_weight = parse_double(sub, "churn move");
    } else if (key == "grow") {
      spec.churn.grow_rate = parse_double(sub, "churn grow");
    } else if (key == "shrink") {
      spec.churn.shrink_rate = parse_double(sub, "churn shrink");
    } else if (key == "sigma") {
      spec.churn.drift_sigma = parse_double(sub, "churn sigma");
    } else if (key == "hotspot") {
      spec.churn.hotspot_fraction = parse_double(sub, "churn hotspot");
    } else if (key == "hradius") {
      spec.churn.hotspot_radius = parse_double(sub, "churn hradius");
    } else if (key == "drift") {
      if (sub == "gauss") {
        spec.churn.drift = dynamic::DriftKind::kGaussian;
      } else if (sub == "waypoint") {
        spec.churn.drift = dynamic::DriftKind::kWaypoint;
      } else {
        throw std::invalid_argument(
            "WorkloadSpec: churn drift must be gauss or waypoint, got: " +
            sub);
      }
    } else if (key == "speed") {
      spec.churn.waypoint_speed = parse_double(sub, "churn speed");
    } else if (key == "audit") {
      spec.churn_audit = parse_size(sub, "churn audit") != 0;
    } else {
      throw std::invalid_argument("WorkloadSpec: unknown churn key: " + key);
    }
  }
  if (spec.churn.epochs == 0) {
    throw std::invalid_argument(
        "WorkloadSpec: churn requires epochs:<n> with n > 0");
  }
}

}  // namespace

WorkloadSpec WorkloadSpec::parse(const std::string& text) {
  WorkloadSpec spec;
  spec.name.clear();  // so we can tell whether the spec set one

  // Strip comments, then tokenize on whitespace.
  std::string stripped;
  bool in_comment = false;
  for (const char c : text) {
    if (c == '#') in_comment = true;
    if (c == '\n') in_comment = false;
    stripped += in_comment ? ' ' : c;
  }
  std::istringstream tokens(stripped);
  std::string token;
  while (tokens >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("WorkloadSpec: expected key=value, got: " +
                                  token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "name") {
      spec.name = value;
    } else if (key == "families") {
      for (const auto& family : split(value, ',')) {
        if (!family.empty()) spec.families.push_back(family);
      }
    } else if (key == "sizes") {
      for (const auto& part : split(value, ',')) {
        if (!part.empty()) parse_sizes_token(part, spec.sizes);
      }
    } else if (key == "modes") {
      for (const auto& mode : split(value, ',')) {
        if (!mode.empty()) spec.modes.push_back(power_mode_from_string(mode));
      }
    } else if (key == "reps") {
      spec.replications = parse_size(value, "reps");
    } else if (key == "seed") {
      spec.base_seed = parse_size(value, "seed");
    } else if (key == "alpha") {
      spec.alpha = parse_double(value, "alpha");
    } else if (key == "beta") {
      spec.beta = parse_double(value, "beta");
    } else if (key == "churn") {
      parse_churn(value, spec);
    } else if (key == "sessions") {
      spec.sessions = parse_size(value, "sessions");
    } else if (key == "epoch_rate") {
      spec.epoch_rate = parse_double(value, "epoch_rate");
    } else {
      throw std::invalid_argument("WorkloadSpec: unknown key: " + key);
    }
  }
  if (spec.name.empty()) spec.name = "workload";
  return spec;
}

std::string WorkloadSpec::to_text() const {
  std::ostringstream out;
  // Full round-trip precision for alpha/beta: parse(to_text()) == *this.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "name=" << name << "\n";
  out << "families=";
  for (std::size_t i = 0; i < families.size(); ++i) {
    out << (i ? "," : "") << families[i];
  }
  out << "\nsizes=";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    out << (i ? "," : "") << sizes[i];
  }
  out << "\nmodes=";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    out << (i ? "," : "") << core::to_string(modes[i]);
  }
  out << "\nreps=" << replications << "\nseed=" << base_seed
      << "\nalpha=" << alpha << "\nbeta=" << beta << "\n";
  if (churn.epochs > 0) {
    out << "churn=epochs:" << churn.epochs << ",rate:" << churn.rate
        << ",add:" << churn.add_weight << ",remove:" << churn.remove_weight
        << ",move:" << churn.move_weight;
    if (churn.grow_rate > 0.0) out << ",grow:" << churn.grow_rate;
    if (churn.shrink_rate > 0.0) out << ",shrink:" << churn.shrink_rate;
    if (churn.drift_sigma > 0.0) out << ",sigma:" << churn.drift_sigma;
    if (churn.hotspot_fraction > 0.0) {
      out << ",hotspot:" << churn.hotspot_fraction;
    }
    if (churn.hotspot_radius > 0.0) out << ",hradius:" << churn.hotspot_radius;
    if (churn.drift != dynamic::DriftKind::kGaussian) {
      out << ",drift:" << dynamic::to_string(churn.drift);
    }
    if (churn.waypoint_speed > 0.0) out << ",speed:" << churn.waypoint_speed;
    if (churn_audit) out << ",audit:1";
    out << "\n";
  }
  // Serving keys only when set, so legacy specs render unchanged.
  if (sessions != 1) out << "sessions=" << sessions << "\n";
  if (epoch_rate != 0.0) out << "epoch_rate=" << epoch_rate << "\n";
  return out.str();
}

void WorkloadSpec::validate(const FamilyRegistry& registry) const {
  if (families.empty()) {
    throw std::invalid_argument("WorkloadSpec: no families");
  }
  if (sizes.empty()) throw std::invalid_argument("WorkloadSpec: no sizes");
  if (modes.empty()) throw std::invalid_argument("WorkloadSpec: no modes");
  if (replications == 0) {
    throw std::invalid_argument("WorkloadSpec: reps must be positive");
  }
  for (const auto& family : families) {
    if (!registry.has(family)) {
      throw std::invalid_argument("WorkloadSpec: unknown family: " + family);
    }
  }
  for (const auto n : sizes) {
    if (n < 2) {
      throw std::invalid_argument("WorkloadSpec: sizes must be >= 2");
    }
  }
  if (sessions == 0) {
    throw std::invalid_argument("WorkloadSpec: sessions must be positive");
  }
  if (epoch_rate < 0.0) {
    throw std::invalid_argument("WorkloadSpec: epoch_rate must be >= 0");
  }
  if (churn.epochs > 0) churn.validate();
}

std::uint64_t cell_seed(std::uint64_t base_seed, const std::string& family,
                        std::size_t n, core::PowerMode mode,
                        std::size_t replication) {
  // FNV-1a over the cell coordinates, then SplitMix64 finalization. Depends
  // only on the cell, never on the rest of the spec.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ base_seed;
  const auto mix_byte = [&h](unsigned char byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const char c : family) mix_byte(static_cast<unsigned char>(c));
  mix_byte(0);
  for (int shift = 0; shift < 64; shift += 8) {
    mix_byte(static_cast<unsigned char>((n >> shift) & 0xff));
  }
  mix_byte(static_cast<unsigned char>(mode));
  for (int shift = 0; shift < 64; shift += 8) {
    mix_byte(static_cast<unsigned char>((replication >> shift) & 0xff));
  }
  return util::SplitMix64(h).next();
}

std::vector<runtime::PlanRequest> WorkloadSpec::expand(
    const FamilyRegistry& registry) const {
  validate(registry);
  std::vector<runtime::PlanRequest> requests;
  requests.reserve(num_requests());
  for (const auto& family : families) {
    for (const auto n : sizes) {
      for (const auto mode : modes) {
        core::PlannerConfig config = mode_config(mode);
        config.sinr.alpha = alpha;
        config.sinr.beta = beta;
        for (std::size_t rep = 0; rep < replications; ++rep) {
          for (std::size_t s = 0; s < sessions; ++s) {
            runtime::PlanRequest request;
            // Sessions fold into the replication coordinate, so sessions=1
            // yields the exact legacy per-rep seed stream and every
            // (rep, session) pair draws an independent cell seed.
            request.seed =
                cell_seed(base_seed, family, n, mode, rep * sessions + s);
            request.points = registry.make(family, n, request.seed);
            request.config = config;
            if (churn.epochs > 0) {
              // The trace seed is the cell seed, so churn inherits the same
              // cell-local determinism as the instance itself.
              request.trace = dynamic::make_churn_trace(
                  request.points, churn, request.seed, config.sink);
              request.audit = churn_audit;
            }
            std::ostringstream tags;
            tags << "family=" << family << " n=" << n << " mode="
                 << core::to_string(mode) << " rep=" << rep;
            if (sessions > 1) tags << " session=" << s;
            if (churn.epochs > 0) tags << " epochs=" << churn.epochs;
            request.tags = tags.str();
            requests.push_back(std::move(request));
          }
        }
      }
    }
  }
  return requests;
}

}  // namespace wagg::workload
