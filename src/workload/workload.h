#ifndef WAGG_WORKLOAD_WORKLOAD_H
#define WAGG_WORKLOAD_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/planner.h"
#include "dynamic/mutation.h"
#include "geom/point.h"
#include "runtime/plan_service.h"

namespace wagg::workload {

/// A named pointset generator: size + seed -> deterministic instance.
using FamilyGenerator =
    std::function<geom::Pointset(std::size_t n, std::uint64_t seed)>;

/// Registry of instance families. The built-in set subsumes the old
/// bench_common.h families (uniform, cluster, grid, expchain, unitchain —
/// with identical parameterizations, so historical bench numbers stay
/// comparable) and extends them with annulus, twotier, and noisygrid.
class FamilyRegistry {
 public:
  /// The registry with all built-in families.
  [[nodiscard]] static FamilyRegistry builtin();

  /// Shared mutable instance used by benches and the workload engine.
  [[nodiscard]] static FamilyRegistry& global();

  [[nodiscard]] bool has(const std::string& name) const;
  /// Sorted family names.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Generates an instance. Throws std::invalid_argument on unknown family.
  [[nodiscard]] geom::Pointset make(const std::string& name, std::size_t n,
                                    std::uint64_t seed) const;

  /// Registers (or replaces) a family.
  void add(std::string name, FamilyGenerator generator);

 private:
  std::map<std::string, FamilyGenerator> families_;
};

/// The experiment-harness default configuration for a power mode
/// (alpha = 3, beta = 1) — previously bench_common.h::mode_config.
[[nodiscard]] core::PlannerConfig mode_config(core::PowerMode mode);

/// Generates an instance from the global registry — THE entry point for
/// benches, tests, and examples (previously bench_common.h::make_family).
/// Throws std::invalid_argument on unknown family names.
[[nodiscard]] geom::Pointset make_family(const std::string& family,
                                         std::size_t n, std::uint64_t seed);

/// Parses "uniform" / "linear" / "oblivious" / "global" (the inverse of
/// core::to_string). Throws std::invalid_argument otherwise.
[[nodiscard]] core::PowerMode power_mode_from_string(const std::string& name);

/// A declarative sweep: families x sizes x power modes x replications, each
/// cell seeded deterministically. Parsed from a simple `key=value` text
/// format (one pair per whitespace-separated token; '#' starts a comment
/// running to end of line):
///
///   name=demo                 # optional label
///   families=uniform,annulus  # registry names
///   sizes=64,128,256          # explicit list, and/or lo..hixF
///   sizes=64..512x2           # geometric sweep: 64, 128, 256, 512
///   modes=global,oblivious    # power modes
///   reps=3                    # replications per cell (default 1)
///   seed=42                   # base seed (default 1)
///   alpha=3.0 beta=1.0        # SINR parameters (defaults shown)
///   churn=epochs:40,rate:0.05,add:2,remove:1,move:2,audit:1
///   churn=epochs:40,rate:0.05,hotspot:0.8,hradius:2.5,drift:waypoint
///   churn=epochs:40,rate:0.02,grow:0.01          # net growth schedule
///   churn=epochs:40,rate:0.02,shrink:0.015       # net shrink schedule
///   sessions=500              # concurrent serve sessions per cell
///   epoch_rate=2.0            # target epochs/sec per session (serving)
///
/// The churn key turns every request into a dynamic session: the instance
/// is planned once, then `epochs` seeded mutation epochs are applied
/// incrementally. Its value is comma-separated `key:value` pairs —
/// epochs (required, > 0), rate (mutations per node per epoch),
/// add/remove/move (kind-mix weights), grow/shrink (net adds/removes per
/// node per epoch, appended after the mixed draws — size-varying
/// schedules that drive the tree engine's attach/remove paths), sigma
/// (move drift; 0 = auto), hotspot (fraction of arrivals/departures
/// concentrated in a seeded hotspot disk), hradius (its radius; 0 = auto),
/// drift (gauss | waypoint: memoryless Gaussian steps vs random-waypoint
/// correlated walks), speed (waypoint step length; 0 = auto), audit (0/1:
/// cross-check every epoch against a full replan).
///
/// Expansion is deterministic: each request's seed depends only on the base
/// seed and its (family, size, mode, replication) cell, never on the rest of
/// the spec, so adding a family leaves every other request unchanged; churn
/// traces derive from the request seed the same way.
struct WorkloadSpec {
  std::string name = "workload";
  std::vector<std::string> families;
  std::vector<std::size_t> sizes;
  std::vector<core::PowerMode> modes;
  std::size_t replications = 1;
  std::uint64_t base_seed = 1;
  double alpha = 3.0;
  double beta = 1.0;
  /// Churn dimension; epochs == 0 means a static (single-plan) workload.
  dynamic::ChurnParams churn{};
  bool churn_audit = false;
  /// Serving dimension: concurrent sessions per cell. Each session is one
  /// expanded request with its own instance and trace, seeded by folding
  /// the session index into the replication coordinate — sessions=1 (the
  /// default) reproduces the legacy per-rep seed stream byte for byte.
  std::size_t sessions = 1;
  /// Target epochs/sec per session; 0 = unpaced (as fast as the pool
  /// allows). Pacing metadata for serve drivers — expand() only carries it.
  double epoch_rate = 0.0;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;

  /// Parses the text format above. Throws std::invalid_argument on unknown
  /// keys, malformed values, or (in validate) empty dimensions.
  [[nodiscard]] static WorkloadSpec parse(const std::string& text);

  /// Canonical text rendering; parse(to_text()) == *this.
  [[nodiscard]] std::string to_text() const;

  /// Throws std::invalid_argument unless every dimension is non-empty and
  /// every family is registered.
  void validate(const FamilyRegistry& registry) const;

  [[nodiscard]] std::size_t num_requests() const noexcept {
    return families.size() * sizes.size() * modes.size() * replications *
           sessions;
  }

  /// Expands into the full request batch, generating every instance. Tags
  /// are "family=<f> n=<n> mode=<m> rep=<r>" (plus " session=<s>" when
  /// sessions > 1). Throws on invalid specs.
  [[nodiscard]] std::vector<runtime::PlanRequest> expand(
      const FamilyRegistry& registry = FamilyRegistry::global()) const;
};

/// The seed expand() uses for one cell — exposed so tests can predict it.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t base_seed,
                                      const std::string& family,
                                      std::size_t n, core::PowerMode mode,
                                      std::size_t replication);

}  // namespace wagg::workload

#endif  // WAGG_WORKLOAD_WORKLOAD_H
