#include "coloring/coloring.h"

#include <algorithm>
#include <stdexcept>

namespace wagg::coloring {

std::vector<std::vector<std::size_t>> Coloring::classes() const {
  std::vector<std::vector<std::size_t>> result(
      static_cast<std::size_t>(num_colors));
  for (std::size_t v = 0; v < color_of.size(); ++v) {
    const int c = color_of[v];
    if (c < 0 || c >= num_colors) {
      throw std::logic_error("Coloring::classes: color out of range");
    }
    result[static_cast<std::size_t>(c)].push_back(v);
  }
  return result;
}

namespace {

void check_permutation(std::size_t n, std::span<const std::size_t> order) {
  if (order.size() != n) {
    throw std::invalid_argument("greedy_color: order size mismatch");
  }
  std::vector<bool> seen(n, false);
  for (std::size_t v : order) {
    if (v >= n || seen[v]) {
      throw std::invalid_argument("greedy_color: order is not a permutation");
    }
    seen[v] = true;
  }
}

}  // namespace

Coloring greedy_color(const conflict::Graph& graph,
                      std::span<const std::size_t> order) {
  const std::size_t n = graph.num_vertices();
  check_permutation(n, order);
  Coloring coloring;
  coloring.color_of.assign(n, -1);
  std::vector<bool> used;  // scratch: colors used by neighbours
  for (std::size_t v : order) {
    used.assign(static_cast<std::size_t>(coloring.num_colors) + 1, false);
    for (const auto w : graph.neighbors(v)) {
      const int c = coloring.color_of[static_cast<std::size_t>(w)];
      if (c >= 0) used[static_cast<std::size_t>(c)] = true;
    }
    int color = 0;
    while (used[static_cast<std::size_t>(color)]) ++color;
    coloring.color_of[v] = color;
    coloring.num_colors = std::max(coloring.num_colors, color + 1);
  }
  return coloring;
}

Coloring greedy_color_index_order(const conflict::Graph& graph) {
  std::vector<std::size_t> order(graph.num_vertices());
  for (std::size_t v = 0; v < order.size(); ++v) order[v] = v;
  return greedy_color(graph, order);
}

namespace {

/// The shared seeded-first-fit core: assigns vertex v the smallest color
/// unused by its neighbors (supplied by `neighbors_of`), updating the
/// coloring in place. Both greedy_recolor flavors delegate here so the
/// first-fit rule cannot diverge between them.
template <typename NeighborsOf>
void first_fit_vertex(Coloring& coloring, std::size_t v,
                      NeighborsOf&& neighbors_of, std::vector<bool>& used) {
  used.assign(static_cast<std::size_t>(coloring.num_colors) + 1, false);
  for (const auto w : neighbors_of(v)) {
    const int c = coloring.color_of[static_cast<std::size_t>(w)];
    if (c >= 0 && c < coloring.num_colors) {
      used[static_cast<std::size_t>(c)] = true;
    }
  }
  int color = 0;
  while (used[static_cast<std::size_t>(color)]) ++color;
  coloring.color_of[v] = color;
  coloring.num_colors = std::max(coloring.num_colors, color + 1);
}

Coloring seed_coloring(std::span<const int> seed) {
  Coloring coloring;
  coloring.color_of.assign(seed.begin(), seed.end());
  for (const int c : seed) {
    coloring.num_colors = std::max(coloring.num_colors, c + 1);
  }
  return coloring;
}

}  // namespace

Coloring greedy_recolor(const conflict::Graph& graph,
                        std::span<const std::size_t> order,
                        std::span<const int> seed) {
  const std::size_t n = graph.num_vertices();
  check_permutation(n, order);
  if (seed.size() != n) {
    throw std::invalid_argument("greedy_recolor: seed size mismatch");
  }
  Coloring coloring = seed_coloring(seed);
  for (std::size_t v = 0; v < n; ++v) {
    const int c = coloring.color_of[v];
    if (c < 0) continue;
    for (const auto w : graph.neighbors(v)) {
      if (coloring.color_of[static_cast<std::size_t>(w)] == c) {
        throw std::invalid_argument(
            "greedy_recolor: seed is not proper on the seeded subgraph");
      }
    }
  }
  std::vector<bool> used;  // scratch: colors used by neighbours
  const auto neighbors_of = [&graph](std::size_t v) {
    return graph.neighbors(v);
  };
  for (std::size_t v : order) {
    if (coloring.color_of[v] >= 0) continue;  // seeded — keep
    first_fit_vertex(coloring, v, neighbors_of, used);
  }
  return coloring;
}

Coloring greedy_recolor_rows(std::span<const std::size_t> targets,
                             std::span<const std::vector<std::int32_t>> rows,
                             std::span<const int> seed) {
  if (targets.size() != rows.size()) {
    throw std::invalid_argument(
        "greedy_recolor_rows: targets/rows size mismatch");
  }
  Coloring coloring = seed_coloring(seed);
  std::vector<bool> used;
  for (std::size_t k = 0; k < targets.size(); ++k) {
    const std::size_t v = targets[k];
    if (v >= seed.size()) {
      throw std::invalid_argument("greedy_recolor_rows: target out of range");
    }
    const auto neighbors_of = [&rows, k](std::size_t) -> const std::vector<std::int32_t>& {
      return rows[k];
    };
    first_fit_vertex(coloring, v, neighbors_of, used);
  }
  return coloring;
}

Coloring dsatur(const conflict::Graph& graph) {
  const std::size_t n = graph.num_vertices();
  Coloring coloring;
  coloring.color_of.assign(n, -1);
  if (n == 0) return coloring;

  std::vector<std::vector<bool>> neighbour_colors(n);
  std::vector<int> saturation(n, 0);
  for (std::size_t step = 0; step < n; ++step) {
    // Select uncolored vertex with max saturation; break ties by degree,
    // then by index (deterministic).
    std::size_t pick = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (coloring.color_of[v] >= 0) continue;
      if (pick == n || saturation[v] > saturation[pick] ||
          (saturation[v] == saturation[pick] &&
           graph.degree(v) > graph.degree(pick))) {
        pick = v;
      }
    }
    auto& used = neighbour_colors[pick];
    int color = 0;
    while (static_cast<std::size_t>(color) < used.size() &&
           used[static_cast<std::size_t>(color)]) {
      ++color;
    }
    coloring.color_of[pick] = color;
    coloring.num_colors = std::max(coloring.num_colors, color + 1);
    for (const auto w : graph.neighbors(pick)) {
      auto& wc = neighbour_colors[static_cast<std::size_t>(w)];
      if (wc.size() <= static_cast<std::size_t>(color)) {
        wc.resize(static_cast<std::size_t>(color) + 1, false);
      }
      if (!wc[static_cast<std::size_t>(color)]) {
        wc[static_cast<std::size_t>(color)] = true;
        ++saturation[static_cast<std::size_t>(w)];
      }
    }
  }
  return coloring;
}

namespace {

struct ExactState {
  const conflict::Graph* graph;
  std::vector<int> color_of;
  long nodes_left;
  int best;  // best (smallest) feasible color count found so far

  bool feasible_with(std::size_t v, int c) const {
    for (const auto w : graph->neighbors(v)) {
      if (color_of[static_cast<std::size_t>(w)] == c) return false;
    }
    return true;
  }

  /// Backtracking: color vertices in index order; prune at `limit` colors.
  bool try_color(std::size_t v, int used, int limit) {
    if (nodes_left-- <= 0) throw std::overflow_error("budget");
    const std::size_t n = graph->num_vertices();
    if (v == n) return true;
    const int cap = std::min(used + 1, limit);
    for (int c = 0; c < cap; ++c) {
      if (!feasible_with(v, c)) continue;
      color_of[v] = c;
      if (try_color(v + 1, std::max(used, c + 1), limit)) return true;
      color_of[v] = -1;
    }
    return false;
  }
};

}  // namespace

std::optional<int> exact_chromatic_number(const conflict::Graph& graph,
                                          long node_budget) {
  const std::size_t n = graph.num_vertices();
  if (n == 0) return 0;
  ExactState state;
  state.graph = &graph;
  state.nodes_left = node_budget;
  const int lower = greedy_clique_lower_bound(graph);
  try {
    for (int k = std::max(1, lower);
         k <= static_cast<int>(n); ++k) {
      state.color_of.assign(n, -1);
      if (state.try_color(0, 0, k)) return k;
    }
  } catch (const std::overflow_error&) {
    return std::nullopt;
  }
  return static_cast<int>(n);  // unreachable: n colors always suffice
}

bool is_proper(const conflict::Graph& graph, const Coloring& coloring) {
  const std::size_t n = graph.num_vertices();
  if (coloring.color_of.size() != n) return false;
  std::vector<bool> color_used(
      static_cast<std::size_t>(std::max(coloring.num_colors, 0)), false);
  for (std::size_t v = 0; v < n; ++v) {
    const int c = coloring.color_of[v];
    if (c < 0 || c >= coloring.num_colors) return false;
    color_used[static_cast<std::size_t>(c)] = true;
    for (const auto w : graph.neighbors(v)) {
      if (coloring.color_of[static_cast<std::size_t>(w)] == c) return false;
    }
  }
  return std::all_of(color_used.begin(), color_used.end(),
                     [](bool used) { return used; });
}

int greedy_clique_lower_bound(const conflict::Graph& graph) {
  const std::size_t n = graph.num_vertices();
  if (n == 0) return 0;
  // Grow a clique greedily from each of the highest-degree vertices.
  std::vector<std::size_t> by_degree(n);
  for (std::size_t v = 0; v < n; ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(),
            [&](std::size_t a, std::size_t b) {
              if (graph.degree(a) != graph.degree(b)) {
                return graph.degree(a) > graph.degree(b);
              }
              return a < b;
            });
  int best = 1;
  const std::size_t tries = std::min<std::size_t>(n, 16);
  for (std::size_t t = 0; t < tries; ++t) {
    std::vector<std::size_t> clique{by_degree[t]};
    for (std::size_t v : by_degree) {
      if (v == by_degree[t]) continue;
      bool adjacent_to_all = true;
      for (std::size_t c : clique) {
        if (!graph.has_edge(v, c)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) clique.push_back(v);
    }
    best = std::max(best, static_cast<int>(clique.size()));
  }
  return best;
}

}  // namespace wagg::coloring
