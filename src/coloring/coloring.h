#ifndef WAGG_COLORING_COLORING_H
#define WAGG_COLORING_COLORING_H

#include <optional>
#include <span>
#include <vector>

#include "conflict/graph.h"

namespace wagg::coloring {

/// A vertex coloring: color_of[v] in [0, num_colors).
struct Coloring {
  std::vector<int> color_of;
  int num_colors = 0;

  /// Color classes as vertex-index lists (the slots of a coloring schedule).
  [[nodiscard]] std::vector<std::vector<std::size_t>> classes() const;
};

/// First-fit greedy coloring processing vertices in the given order: each
/// vertex receives the smallest color unused by its already-colored
/// neighbours. With the non-increasing-length order this is the paper's
/// constant-approximation algorithm for G_f graphs (Appendix A, via constant
/// inductive independence [27]).
/// Throws std::invalid_argument if `order` is not a permutation.
[[nodiscard]] Coloring greedy_color(const conflict::Graph& graph,
                                    std::span<const std::size_t> order);

/// Greedy coloring in vertex-index order (baseline / ablation).
[[nodiscard]] Coloring greedy_color_index_order(const conflict::Graph& graph);

/// Seeded (warm-start) recoloring: vertices with seed[v] >= 0 keep exactly
/// that color; the rest are first-fit colored in `order` (seeded entries of
/// `order` are skipped). The incremental planner uses this to recolor only
/// the links whose conflict neighborhood changed across an epoch.
/// Preconditions: `order` is a permutation of [0, n), seed.size() == n, and
/// the seed is proper on the seeded subgraph (std::invalid_argument
/// otherwise).
[[nodiscard]] Coloring greedy_recolor(const conflict::Graph& graph,
                                      std::span<const std::size_t> order,
                                      std::span<const int> seed);

/// greedy_recolor without materializing a Graph: targets[k] (its conflict
/// row given as rows[k], vertex indices) are first-fit colored in order
/// k = 0, 1, ... against the seed; all other vertices keep their seed
/// color. Same first-fit rule as greedy_recolor — the incremental planner
/// feeds it the bucket-grid subset rows of its dirty links. Rows are not
/// validated against the (absent) graph; seed propriety is the caller's
/// responsibility.
[[nodiscard]] Coloring greedy_recolor_rows(
    std::span<const std::size_t> targets,
    std::span<const std::vector<std::int32_t>> rows,
    std::span<const int> seed);

/// DSATUR (Brelaz 1979): picks the uncolored vertex with the highest color
/// saturation. A stronger general-purpose heuristic used for comparison.
[[nodiscard]] Coloring dsatur(const conflict::Graph& graph);

/// Exact chromatic number by branch-and-bound over colorings, feasible for
/// small graphs only. Returns std::nullopt if the search exceeds
/// `node_budget` backtracking nodes.
[[nodiscard]] std::optional<int> exact_chromatic_number(
    const conflict::Graph& graph, long node_budget = 2'000'000);

/// True iff adjacent vertices always have distinct colors and every color in
/// [0, num_colors) is used by some vertex.
[[nodiscard]] bool is_proper(const conflict::Graph& graph,
                             const Coloring& coloring);

/// Size of a greedily grown clique (a cheap chromatic lower bound).
[[nodiscard]] int greedy_clique_lower_bound(const conflict::Graph& graph);

}  // namespace wagg::coloring

#endif  // WAGG_COLORING_COLORING_H
