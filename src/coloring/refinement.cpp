#include "coloring/refinement.h"

#include <stdexcept>

#include "sinr/interference.h"

namespace wagg::coloring {

std::vector<std::vector<std::size_t>> RefinementResult::classes() const {
  std::vector<std::vector<std::size_t>> result(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < class_of_link.size(); ++i) {
    const int c = class_of_link[i];
    if (c < 0 || c >= num_classes) {
      throw std::logic_error("RefinementResult::classes: class out of range");
    }
    result[static_cast<std::size_t>(c)].push_back(i);
  }
  return result;
}

RefinementResult firstfit_refinement(const geom::LinkView& links, double alpha,
                                     double threshold) {
  if (!(alpha > 0.0)) {
    throw std::invalid_argument("firstfit_refinement: alpha must be positive");
  }
  if (!(threshold > 0.0)) {
    throw std::invalid_argument(
        "firstfit_refinement: threshold must be positive");
  }
  RefinementResult result;
  result.class_of_link.assign(links.size(), -1);
  std::vector<std::vector<std::size_t>> classes;
  for (const std::size_t i : links.by_decreasing_length()) {
    bool placed = false;
    for (std::size_t k = 0; k < classes.size(); ++k) {
      const double load =
          sinr::outgoing_interference(links, i, classes[k], alpha);
      if (load < threshold) {
        classes[k].push_back(i);
        result.class_of_link[i] = static_cast<int>(k);
        placed = true;
        break;
      }
    }
    if (!placed) {
      result.class_of_link[i] = static_cast<int>(classes.size());
      classes.push_back({i});
    }
  }
  result.num_classes = static_cast<int>(classes.size());
  return result;
}

}  // namespace wagg::coloring
