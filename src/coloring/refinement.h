#ifndef WAGG_COLORING_REFINEMENT_H
#define WAGG_COLORING_REFINEMENT_H

#include <vector>

#include "geom/linkset.h"

namespace wagg::coloring {

/// The first-fit refinement at the core of the paper's Theorem 2: iterate
/// over the links in non-increasing length order and assign each link i to
/// the first class S_k with I(i, S_k) < threshold, where I is the additive
/// interference operator of Sec 3.2 (outgoing interference of i on the class,
/// which at insertion time consists only of links no shorter than i).
///
/// For the links of an MST, Lemma 1 guarantees I(i, T_i^+) = O(1), so the
/// number of classes is O(1); and each class S satisfies I(i, S_i^+) <
/// threshold, which for threshold <= 1 makes every class an independent set
/// of G_1 (the unit-distance conflict graph). Both properties are verified
/// in tests and measured in bench E2.
struct RefinementResult {
  std::vector<int> class_of_link;
  int num_classes = 0;

  [[nodiscard]] std::vector<std::vector<std::size_t>> classes() const;
};

[[nodiscard]] RefinementResult firstfit_refinement(const geom::LinkView& links,
                                                   double alpha,
                                                   double threshold = 1.0);

}  // namespace wagg::coloring

#endif  // WAGG_COLORING_REFINEMENT_H
