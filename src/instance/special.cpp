#include "instance/special.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wagg::instance {

Fig1Instance fig1_instance(double scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("fig1_instance: scale must be positive");
  }
  Fig1Instance inst;
  const double s = scale;
  // Node order: a, b, c, d, sink.
  inst.points = {
      geom::Point{-s, -s},  // a
      geom::Point{s, -s},   // b
      geom::Point{-s, 0.0}, // c
      geom::Point{s, 0.0},  // d
      geom::Point{0.0, 0.0} // sink
  };
  std::vector<geom::Link> links = {
      geom::Link{0, 2},  // a -> c
      geom::Link{1, 3},  // b -> d
      geom::Link{2, 4},  // c -> sink
      geom::Link{3, 4},  // d -> sink
  };
  inst.tree = geom::LinkSet(inst.points, std::move(links));
  inst.slots = {{0, 3}, {1, 2}};  // S1 = {a->c, d->sink}, S2 = {b->d, c->sink}
  inst.sink = 4;
  return inst;
}

FiveCycleInstance five_cycle_instance(double circumradius, double eps) {
  if (!(circumradius > 0.0)) {
    throw std::invalid_argument("five_cycle_instance: radius must be positive");
  }
  if (!(eps > 0.0 && eps < 0.1 * circumradius)) {
    throw std::invalid_argument(
        "five_cycle_instance: eps must be positive and small vs radius");
  }
  FiveCycleInstance inst;
  const double two_pi = 2.0 * std::numbers::pi;
  for (int k = 0; k < 5; ++k) {
    const double angle = two_pi * static_cast<double>(k) / 5.0;
    inst.points.push_back(geom::Point{circumradius * std::cos(angle),
                                      circumradius * std::sin(angle)});
  }
  // v6: just outside the pentagon next to v1, so that e5 = v5 -> v6 conflicts
  // with e1 = v1 -> v2 through interference rather than a shared node.
  inst.points.push_back(
      geom::Point{(circumradius + eps), 0.0});

  std::vector<geom::Link> links = {
      geom::Link{0, 1},  // e1
      geom::Link{1, 2},  // e2
      geom::Link{2, 3},  // e3
      geom::Link{3, 4},  // e4
      geom::Link{4, 5},  // e5 (ends at the near-duplicate of v1)
  };
  inst.links = geom::LinkSet(inst.points, std::move(links));
  // The paper's multicolor sequence 13, 24, 14, 25, 35 (1-based).
  inst.multicolor_slots = {{0, 2}, {1, 3}, {0, 3}, {1, 4}, {2, 4}};
  // chi(C5) = 3: e.g. {e1, e3}, {e2, e4}, {e5}.
  inst.coloring_slots = {{0, 2}, {1, 3}, {4}};
  return inst;
}

}  // namespace wagg::instance
