#ifndef WAGG_INSTANCE_EXTENDED_H
#define WAGG_INSTANCE_EXTENDED_H

#include <cstdint>

#include "geom/point.h"

namespace wagg::instance {

/// Hierarchical (multi-scale) deployment: a recursive cluster tree. Level 0
/// is a single site; each site spawns `branching` child sites at distance
/// `scale` times the parent spacing, down to `levels` levels; the leaves are
/// the sensors. Produces length diversity Delta ~ scale_ratio^levels with
/// populated scales in between — the regime where the G^delta / G_log
/// machinery earns its keep.
[[nodiscard]] geom::Pointset hierarchical(int levels, int branching,
                                          double scale_ratio,
                                          std::uint64_t seed);

/// Heavy-tailed deployment: points placed at Pareto(alpha_tail)-distributed
/// radii around a center. Corollary 1's "any non-heavy-tailed distribution"
/// caveat: for small alpha_tail, Delta grows super-polynomially in n and the
/// loglog/log* guarantees must absorb it.
[[nodiscard]] geom::Pointset pareto_field(std::size_t n, double alpha_tail,
                                          std::uint64_t seed);

/// Archimedean spiral: r = a * theta; a smooth 1-D manifold embedded in the
/// plane — MSTs follow the spiral arm, conflict graphs see 2-D proximity
/// between adjacent turns.
[[nodiscard]] geom::Pointset spiral(std::size_t n, double turns,
                                    double spacing = 1.0);

/// Regular grid with i.i.d. uniform jitter of magnitude `jitter` * spacing
/// per coordinate — degrades the grid's massive tie structure smoothly.
[[nodiscard]] geom::Pointset perturbed_grid(std::size_t rows, std::size_t cols,
                                            double spacing, double jitter,
                                            std::uint64_t seed);

/// n nodes uniform by area in the annulus inner_radius <= r <= outer_radius
/// (inverse-CDF sampling, no rejection). A ring deployment leaves the sink
/// region empty, so every aggregation path must cross the hole — MST links
/// near the inner rim are long relative to the ring's local density.
/// Requires 0 <= inner_radius < outer_radius.
[[nodiscard]] geom::Pointset annulus(std::size_t n, double inner_radius,
                                     double outer_radius, std::uint64_t seed);

/// Two-tier deployment: `core_n` nodes uniform in a dense disk of radius
/// core_radius around the origin plus `fringe_n` nodes uniform by area in
/// the sparse annulus (core_radius, fringe_radius]. Two well-separated
/// length scales in one instance — the dense core stresses the conflict
/// graph's degree bound while fringe links stress the repair pass.
/// Requires 0 < core_radius < fringe_radius.
[[nodiscard]] geom::Pointset two_tier(std::size_t core_n, std::size_t fringe_n,
                                      double core_radius, double fringe_radius,
                                      std::uint64_t seed);

}  // namespace wagg::instance

#endif  // WAGG_INSTANCE_EXTENDED_H
