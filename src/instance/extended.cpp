#include "instance/extended.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.h"

namespace wagg::instance {

geom::Pointset hierarchical(int levels, int branching, double scale_ratio,
                            std::uint64_t seed) {
  if (levels < 1 || levels > 12) {
    throw std::invalid_argument("hierarchical: levels must be in [1, 12]");
  }
  if (branching < 2 || branching > 16) {
    throw std::invalid_argument("hierarchical: branching must be in [2, 16]");
  }
  if (!(scale_ratio > 1.0)) {
    throw std::invalid_argument("hierarchical: scale_ratio must exceed 1");
  }
  double count = 1.0;
  for (int level = 0; level < levels; ++level) {
    count *= static_cast<double>(branching);
  }
  if (count > 200000.0) {
    throw std::invalid_argument("hierarchical: branching^levels too large");
  }
  util::Rng rng(seed);
  geom::Pointset sites{geom::Point{0.0, 0.0}};
  double spread = std::pow(scale_ratio, static_cast<double>(levels));
  for (int level = 0; level < levels; ++level) {
    geom::Pointset next;
    next.reserve(sites.size() * static_cast<std::size_t>(branching));
    for (const auto& site : sites) {
      for (int b = 0; b < branching; ++b) {
        const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
        const double radius = spread * rng.uniform(0.5, 1.0);
        next.push_back(geom::Point{site.x + radius * std::cos(angle),
                                   site.y + radius * std::sin(angle)});
      }
    }
    sites = std::move(next);
    spread /= scale_ratio;
  }
  return sites;
}

geom::Pointset pareto_field(std::size_t n, double alpha_tail,
                            std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("pareto_field: need n >= 2");
  if (!(alpha_tail > 0.0)) {
    throw std::invalid_argument("pareto_field: alpha_tail must be positive");
  }
  util::Rng rng(seed);
  geom::Pointset points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Pareto radius via inverse CDF; capped to keep coordinates finite.
    const double u = std::max(rng.uniform(), 1e-12);
    const double radius =
        std::min(std::pow(u, -1.0 / alpha_tail), 1e100);
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    points.push_back(geom::Point{radius * std::cos(angle),
                                 radius * std::sin(angle)});
  }
  return points;
}

geom::Pointset spiral(std::size_t n, double turns, double spacing) {
  if (n < 2) throw std::invalid_argument("spiral: need n >= 2");
  if (!(turns > 0.0)) throw std::invalid_argument("spiral: turns must be > 0");
  if (!(spacing > 0.0)) {
    throw std::invalid_argument("spiral: spacing must be positive");
  }
  geom::Pointset points;
  points.reserve(n);
  const double theta_max = turns * 2.0 * std::numbers::pi;
  // r = a * theta with a chosen so successive turns sit `spacing` apart.
  const double a = spacing / (2.0 * std::numbers::pi);
  for (std::size_t i = 0; i < n; ++i) {
    // Uniform in theta^2 gives roughly uniform arc-length spacing.
    const double frac = static_cast<double>(i) / static_cast<double>(n - 1);
    const double theta = theta_max * std::sqrt(frac);
    points.push_back(geom::Point{a * theta * std::cos(theta),
                                 a * theta * std::sin(theta)});
  }
  return points;
}

geom::Pointset perturbed_grid(std::size_t rows, std::size_t cols,
                              double spacing, double jitter,
                              std::uint64_t seed) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("perturbed_grid: empty grid");
  }
  if (!(spacing > 0.0)) {
    throw std::invalid_argument("perturbed_grid: spacing must be positive");
  }
  if (!(jitter >= 0.0 && jitter < 0.5)) {
    throw std::invalid_argument(
        "perturbed_grid: jitter must lie in [0, 0.5) to keep points distinct");
  }
  util::Rng rng(seed);
  geom::Pointset points;
  points.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      points.push_back(geom::Point{
          (static_cast<double>(c) + jitter * rng.uniform(-1.0, 1.0)) * spacing,
          (static_cast<double>(r) + jitter * rng.uniform(-1.0, 1.0)) *
              spacing});
    }
  }
  return points;
}

namespace {

// Radius uniform by area between r0 and r1: r = sqrt(r0^2 + u * (r1^2 - r0^2)).
geom::Point annulus_point(util::Rng& rng, double r0, double r1) {
  const double radius =
      std::sqrt(r0 * r0 + rng.uniform() * (r1 * r1 - r0 * r0));
  const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return geom::Point{radius * std::cos(angle), radius * std::sin(angle)};
}

}  // namespace

geom::Pointset annulus(std::size_t n, double inner_radius, double outer_radius,
                       std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("annulus: need n >= 2");
  if (!(inner_radius >= 0.0 && inner_radius < outer_radius)) {
    throw std::invalid_argument(
        "annulus: need 0 <= inner_radius < outer_radius");
  }
  util::Rng rng(seed);
  geom::Pointset points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(annulus_point(rng, inner_radius, outer_radius));
  }
  return points;
}

geom::Pointset two_tier(std::size_t core_n, std::size_t fringe_n,
                        double core_radius, double fringe_radius,
                        std::uint64_t seed) {
  if (core_n + fringe_n < 2) {
    throw std::invalid_argument("two_tier: need >= 2 nodes in total");
  }
  if (!(core_radius > 0.0 && core_radius < fringe_radius)) {
    throw std::invalid_argument(
        "two_tier: need 0 < core_radius < fringe_radius");
  }
  util::Rng rng(seed);
  geom::Pointset points;
  points.reserve(core_n + fringe_n);
  for (std::size_t i = 0; i < core_n; ++i) {
    points.push_back(annulus_point(rng, 0.0, core_radius));
  }
  for (std::size_t i = 0; i < fringe_n; ++i) {
    points.push_back(annulus_point(rng, core_radius, fringe_radius));
  }
  return points;
}

}  // namespace wagg::instance
