#ifndef WAGG_INSTANCE_SPECIAL_H
#define WAGG_INSTANCE_SPECIAL_H

#include <cstdint>
#include <vector>

#include "geom/linkset.h"
#include "geom/point.h"

namespace wagg::instance {

/// The paper's Fig 1: five nodes (a, b, c, d and the sink), aggregation tree
/// a->c, b->d, c->sink, d->sink, and the periodic 2-slot schedule
/// S1 = {a->c, d->sink}, S2 = {b->d, c->sink} attaining rate 1/2 with
/// latency 3. The embedding below makes both slots SINR-feasible under
/// uniform power with alpha = 3, beta = 2 (verified in tests):
///
///   a(-1,-1)   b(1,-1)
///   c(-1, 0)   d(1, 0)      sink(0, 0... at origin between c and d)
struct Fig1Instance {
  geom::Pointset points;  ///< order: a, b, c, d, sink
  geom::LinkSet tree;     ///< links in order: a->c, b->d, c->sink, d->sink
  std::vector<std::vector<std::size_t>> slots;  ///< {S1, S2} as link indices
  std::int32_t sink = 4;
};

[[nodiscard]] Fig1Instance fig1_instance(double scale = 1.0);

/// SINR embedding of the Sec 4 multicoloring example: the 5-cycle whose
/// proper colorings need 3 slots (rate 1/3) but whose multicoloring schedule
/// 13, 24, 14, 25, 35 achieves rate 2/5.
///
/// Six nodes: five on a regular pentagon of circumradius R plus a sixth at
/// distance eps from the first, and the five pentagon-edge links
/// e_i = v_i -> v_(i+1) (e_5 ends at the near-duplicate node v_6 ~ v_1).
/// Two links are cofeasible under uniform power with beta = 1 iff they are
/// non-adjacent in the cycle — the line graph of C5 is again C5.
struct FiveCycleInstance {
  geom::Pointset points;  ///< v1..v5 on the pentagon, v6 near v1
  geom::LinkSet links;    ///< e1..e5 along the cycle
  /// The optimal multicolor schedule {13, 24, 14, 25, 35} (0-based indices).
  std::vector<std::vector<std::size_t>> multicolor_slots;
  /// A best proper-coloring schedule: 3 slots.
  std::vector<std::vector<std::size_t>> coloring_slots;
};

[[nodiscard]] FiveCycleInstance five_cycle_instance(double circumradius = 1.0,
                                                    double eps = 1e-3);

}  // namespace wagg::instance

#endif  // WAGG_INSTANCE_SPECIAL_H
