#ifndef WAGG_INSTANCE_LOWERBOUND_H
#define WAGG_INSTANCE_LOWERBOUND_H

#include <cstddef>
#include <vector>

#include "geom/point.h"

namespace wagg::instance {

/// The Sec 4.1 / Fig 2 construction: collinear points whose consecutive gaps
/// grow doubly exponentially, g_t = x^((1/tau')^(t-1)), tau' = min(tau,1-tau).
/// On this instance no two links are P_tau-cofeasible, forcing any
/// aggregation schedule to rate O(1/n) = O(1/loglog Delta) (Proposition 1).
struct DoublyExponentialChain {
  geom::Pointset points;
  double tau = 0.0;        ///< the oblivious power exponent the instance defeats
  double tau_prime = 0.0;  ///< min(tau, 1 - tau)
  double x = 0.0;          ///< base separation (paper's constant x)
  double log2_delta = 0.0; ///< log2 of the length diversity of the chain MST
};

/// Builds the chain with n >= 2 points for power scheme P_tau (tau in (0,1))
/// and SINR parameters alpha > 2, beta > 0. `margin > 1` scales x above the
/// paper's threshold max(2, (2/beta^(1/alpha))^(1/tau')).
/// Throws std::overflow_error if the coordinates would exceed double range
/// (use max_doubly_exponential_size to query the cap first).
[[nodiscard]] DoublyExponentialChain doubly_exponential_chain(
    std::size_t n, double tau, double alpha, double beta,
    double margin = 1.5);

/// Largest n such that doubly_exponential_chain(n, ...) does not overflow.
[[nodiscard]] std::size_t max_doubly_exponential_size(double tau, double alpha,
                                                      double beta,
                                                      double margin = 1.5);

/// The Sec 4.2 / Fig 3 recursive construction R_t: instances whose MST
/// cannot be aggregated at rate better than 2/(t+1), with t = Omega(log* Delta).
///
/// The paper's copy count k_(t+1) = c / rho(R_t) explodes doubly
/// exponentially, so beyond t = 2 the instance is materializable only with a
/// cap on the number of copies per level; the cap is recorded so experiments
/// can report when the analytical premise (Claim 1) is weakened.
struct RecursiveInstance {
  geom::Pointset points;
  int t = 0;
  double c = 0.0;              ///< the constant in k_(t+1) = c / rho(R_t)
  std::size_t copy_cap = 0;    ///< max copies allowed per level
  bool capped = false;         ///< true if any level hit the cap
  std::vector<std::size_t> copies_per_level;  ///< k_2, k_3, ..., k_t
  double log2_delta = 0.0;
};

/// Builds R_t (t >= 1). Throws std::overflow_error if coordinates or the
/// node budget (`max_nodes`) would be exceeded even with capping.
[[nodiscard]] RecursiveInstance recursive_rt(int t, double c = 4.0,
                                             std::size_t copy_cap = 32,
                                             std::size_t max_nodes = 200000);

/// rho(R) = min over MST links i of (l_i / dhat_i)^alpha-free form l_i/dhat_i
/// (the paper's rho with the alpha exponent left out; callers exponentiate).
/// Defined for sorted line instances; dhat_i is the distance from the link's
/// right endpoint to the leftmost point.
[[nodiscard]] double rho_line_instance(const geom::Pointset& sorted_points);

}  // namespace wagg::instance

#endif  // WAGG_INSTANCE_LOWERBOUND_H
