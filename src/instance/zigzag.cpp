#include "instance/zigzag.h"

#include <cmath>
#include <stdexcept>

#include "util/logmath.h"

namespace wagg::instance {

namespace {

void check_params(std::size_t m, double tau, double x) {
  if (m < 2) throw std::invalid_argument("zigzag_instance: m must be >= 2");
  if (!(tau > 0.0 && tau < 1.0)) {
    throw std::invalid_argument("zigzag_instance: tau must lie in (0, 1)");
  }
  if (!(x > 1.0)) {
    throw std::invalid_argument("zigzag_instance: x must exceed 1");
  }
}

}  // namespace

ZigzagInstance zigzag_instance(std::size_t m, double tau, double x,
                               bool mirrored) {
  check_params(m, tau, x);
  // The mirrored variant uses exponent parameter t = 1 - tau throughout and
  // reverses the directions of all links.
  const double t = mirrored ? 1.0 - tau : tau;
  const double growth = 1.0 / t;

  // Long link lengths L_1..L_m and short lengths p_1..p_(m-1).
  std::vector<double> lengths_long(m);
  std::vector<double> lengths_short(m - 1);
  double lg_L = std::log2(x);  // log2 of L_k, tracked to detect overflow
  for (std::size_t k = 0; k < m; ++k) {
    if (lg_L > 995.0) {
      throw std::overflow_error("zigzag_instance: L_m overflows double range");
    }
    lengths_long[k] = std::exp2(lg_L);
    if (k + 1 < m) {
      // p_k = L_(k+1)^t * L_k^(1 - t + t^2) = L_k^(2 - t + t^2)
      lengths_short[k] = std::pow(lengths_long[k], 2.0 - t + t * t);
    }
    lg_L *= growth;
  }

  // Walk the zigzag: +L_1, +p_1, -L_2, +p_2, ..., -L_m.
  std::vector<double> xs;
  xs.reserve(2 * m);
  xs.push_back(0.0);
  xs.push_back(lengths_long[0]);
  for (std::size_t k = 1; k < m; ++k) {
    xs.push_back(xs.back() + lengths_short[k - 1]);
    xs.push_back(xs.back() - lengths_long[k]);
  }

  ZigzagInstance inst;
  inst.points = geom::line_pointset(xs);
  inst.tau = tau;
  inst.x = x;
  inst.mirrored = mirrored;

  const auto num_nodes = static_cast<std::int32_t>(xs.size());
  std::vector<geom::Link> links;
  links.reserve(xs.size() - 1);
  for (std::int32_t j = 0; j + 1 < num_nodes; ++j) {
    if (mirrored) {
      links.push_back(geom::Link{j + 1, j});  // directed towards v_0
    } else {
      links.push_back(geom::Link{j, j + 1});  // directed towards v_(2m-1)
    }
  }
  inst.sink = mirrored ? 0 : num_nodes - 1;
  inst.tree_links = geom::LinkSet(inst.points, std::move(links));

  for (std::size_t j = 0; j + 1 < xs.size(); ++j) {
    if (j % 2 == 0) {
      inst.long_links.push_back(j);  // path edges 1,3,5,... are the L_k
    } else {
      inst.short_links.push_back(j);
    }
  }
  return inst;
}

std::size_t max_zigzag_longs(double tau, double x, bool mirrored) {
  check_params(2, tau, x);
  const double t = mirrored ? 1.0 - tau : tau;
  const double growth = 1.0 / t;
  double lg_L = std::log2(x);
  std::size_t m = 0;
  while (lg_L <= 995.0 && m < 10000) {
    ++m;
    lg_L *= growth;
  }
  return m;
}

double zigzag_tau_threshold() {
  // Positive root of gamma(t) = t^4 - 3 t^3 + 4 t^2 - 4 t + 1 in (0, 1/2),
  // located by bisection.
  auto gamma = [](double t) {
    return ((t - 3.0) * t + 4.0) * t * t - 4.0 * t + 1.0;
  };
  double lo = 0.0, hi = 0.5;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (gamma(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace wagg::instance
