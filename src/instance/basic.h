#ifndef WAGG_INSTANCE_BASIC_H
#define WAGG_INSTANCE_BASIC_H

#include <cstdint>

#include "geom/point.h"

namespace wagg::instance {

/// n nodes uniformly at random in the axis-aligned square [0, side]^2.
/// The paper's Corollary 1 setting. Deterministic given the seed.
[[nodiscard]] geom::Pointset uniform_square(std::size_t n, double side,
                                            std::uint64_t seed);

/// n nodes uniformly at random in a disk of the given radius (rejection
/// sampling), the other Corollary 1 setting.
[[nodiscard]] geom::Pointset uniform_disk(std::size_t n, double radius,
                                          std::uint64_t seed);

/// rows x cols regular grid with the given spacing — the constant-rate
/// regular deployment mentioned in Related Work ([1]) and Sec 3.1.
[[nodiscard]] geom::Pointset grid(std::size_t rows, std::size_t cols,
                                  double spacing);

/// Clustered deployment: `clusters` centers uniform in [0, side]^2, each
/// surrounded by `per_cluster` Gaussian satellites with the given standard
/// deviation. Produces high length diversity with multiple scales.
[[nodiscard]] geom::Pointset clustered(std::size_t clusters,
                                       std::size_t per_cluster, double side,
                                       double sigma, std::uint64_t seed);

/// n collinear nodes with unit gaps: the chain whose MST schedules in O(1)
/// slots but has linear latency (Sec 3.1 rate-vs-latency discussion).
[[nodiscard]] geom::Pointset unit_chain(std::size_t n);

/// n collinear nodes with geometrically growing gaps base^0, base^1, ...
/// (base > 1). The classic example where uniform power forces Omega(n) slots
/// but power control schedules in few slots; Delta = base^(n-2).
[[nodiscard]] geom::Pointset exponential_chain(std::size_t n, double base);

/// n collinear nodes uniform in [0, length].
[[nodiscard]] geom::Pointset uniform_line(std::size_t n, double length,
                                          std::uint64_t seed);

}  // namespace wagg::instance

#endif  // WAGG_INSTANCE_BASIC_H
