#ifndef WAGG_INSTANCE_ZIGZAG_H
#define WAGG_INSTANCE_ZIGZAG_H

#include <cstddef>
#include <vector>

#include "geom/linkset.h"
#include "geom/point.h"

namespace wagg::instance {

/// The Sec 5 / Fig 4 construction showing that the MST is not always the
/// best aggregation tree under an oblivious power scheme P_tau.
///
/// 2m collinear nodes v_0..v_(2m-1) visited by a zigzag spanning path with
/// displacements +L_1, +p_1, -L_2, +p_2, ..., -L_m where
///   L_1 = x,   L_(k+1) = L_k^(1/tau),   p_k = L_(k+1)^tau * L_k^(1-tau+tau^2)
/// (the mirrored variant for tau >= 3/5 swaps tau <-> 1-tau and reverses the
/// link directions). The m long links {L_k} form one P_tau-feasible slot and
/// the m-1 short links {p_k} another (Claim 2), so the zigzag tree schedules
/// in 2 slots, while the MST of the same points contains a doubly-exponential
/// chain of gaps and needs Theta(m) slots (Proposition 3).
///
/// Reproduction note: the feasibility of the short-link slot requires
/// gamma(tau) = 1 - 4 tau + 4 tau^2 - 3 tau^3 + tau^4 > 0, which holds for
/// tau < ~0.3403 — slightly narrower than the paper's stated (0, 2/5];
/// at tau = 0.4 the short slot is numerically infeasible for every x.
/// See EXPERIMENTS.md (E6).
struct ZigzagInstance {
  geom::Pointset points;       ///< the 2m nodes (sorted by construction order)
  geom::LinkSet tree_links;    ///< the zigzag spanning path, directed to sink
  std::vector<std::size_t> long_links;   ///< indices of the L_k links (slot 1)
  std::vector<std::size_t> short_links;  ///< indices of the p_k links (slot 2)
  std::int32_t sink = 0;       ///< node index the path is directed towards
  double tau = 0.0;
  double x = 0.0;
  bool mirrored = false;
};

/// Builds the instance with m >= 2 long links (2m nodes). `x > 1` is the base
/// length. Set `mirrored` for the tau >= 3/5 variant.
/// Throws std::overflow_error when L_m would exceed double range; use
/// max_zigzag_longs to query the largest feasible m.
[[nodiscard]] ZigzagInstance zigzag_instance(std::size_t m, double tau,
                                             double x, bool mirrored = false);

/// Largest m such that zigzag_instance(m, tau, x, mirrored) does not overflow.
[[nodiscard]] std::size_t max_zigzag_longs(double tau, double x,
                                           bool mirrored = false);

/// The tau threshold below which the short-link slot is asymptotically
/// feasible: the positive root of gamma(tau) = 1 - 4t + 4t^2 - 3t^3 + t^4.
[[nodiscard]] double zigzag_tau_threshold();

}  // namespace wagg::instance

#endif  // WAGG_INSTANCE_ZIGZAG_H
