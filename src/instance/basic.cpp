#include "instance/basic.h"

#include <cmath>
#include <stdexcept>

#include "util/logmath.h"
#include "util/rng.h"

namespace wagg::instance {

namespace {
void require_positive(double v, const char* what) {
  if (!(v > 0.0)) {
    throw std::invalid_argument(std::string("instance: ") + what +
                                " must be positive");
  }
}
}  // namespace

geom::Pointset uniform_square(std::size_t n, double side, std::uint64_t seed) {
  require_positive(side, "side");
  util::Rng rng(seed);
  geom::Pointset points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(geom::Point{rng.uniform(0.0, side),
                                 rng.uniform(0.0, side)});
  }
  return points;
}

geom::Pointset uniform_disk(std::size_t n, double radius, std::uint64_t seed) {
  require_positive(radius, "radius");
  util::Rng rng(seed);
  geom::Pointset points;
  points.reserve(n);
  while (points.size() < n) {
    const double x = rng.uniform(-radius, radius);
    const double y = rng.uniform(-radius, radius);
    if (x * x + y * y <= radius * radius) {
      points.push_back(geom::Point{x, y});
    }
  }
  return points;
}

geom::Pointset grid(std::size_t rows, std::size_t cols, double spacing) {
  require_positive(spacing, "spacing");
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("instance: grid dimensions must be positive");
  }
  geom::Pointset points;
  points.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      points.push_back(geom::Point{static_cast<double>(c) * spacing,
                                   static_cast<double>(r) * spacing});
    }
  }
  return points;
}

geom::Pointset clustered(std::size_t clusters, std::size_t per_cluster,
                         double side, double sigma, std::uint64_t seed) {
  require_positive(side, "side");
  require_positive(sigma, "sigma");
  util::Rng rng(seed);
  geom::Pointset points;
  points.reserve(clusters * per_cluster);
  for (std::size_t c = 0; c < clusters; ++c) {
    const geom::Point center{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    for (std::size_t k = 0; k < per_cluster; ++k) {
      points.push_back(geom::Point{center.x + sigma * rng.normal(),
                                   center.y + sigma * rng.normal()});
    }
  }
  return points;
}

geom::Pointset unit_chain(std::size_t n) {
  geom::Pointset points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(geom::Point{static_cast<double>(i), 0.0});
  }
  return points;
}

geom::Pointset exponential_chain(std::size_t n, double base) {
  if (base <= 1.0) {
    throw std::invalid_argument("exponential_chain: base must exceed 1");
  }
  if (n >= 2 && !util::pow_fits(base, static_cast<double>(n))) {
    throw std::overflow_error("exponential_chain: coordinates overflow");
  }
  geom::Pointset points;
  points.reserve(n);
  double x = 0.0;
  double gap = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(geom::Point{x, 0.0});
    x += gap;
    gap *= base;
  }
  return points;
}

geom::Pointset uniform_line(std::size_t n, double length, std::uint64_t seed) {
  require_positive(length, "length");
  util::Rng rng(seed);
  geom::Pointset points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(geom::Point{rng.uniform(0.0, length), 0.0});
  }
  return points;
}

}  // namespace wagg::instance
