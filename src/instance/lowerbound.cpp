#include "instance/lowerbound.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/logmath.h"

namespace wagg::instance {

namespace {

constexpr double kCoordinateGuard = 1e300;

void check_tau(double tau) {
  if (!(tau > 0.0 && tau < 1.0)) {
    throw std::invalid_argument("tau must lie in (0, 1)");
  }
}

double fig2_base_x(double tau_prime, double alpha, double beta, double margin) {
  if (!(alpha > 2.0)) throw std::invalid_argument("alpha must exceed 2");
  if (!(beta > 0.0)) throw std::invalid_argument("beta must be positive");
  if (!(margin > 1.0)) throw std::invalid_argument("margin must exceed 1");
  // Paper threshold: x > max(2, (2 / beta^(1/alpha))^(1/tau')).
  const double threshold =
      std::max(2.0, std::pow(2.0 / std::pow(beta, 1.0 / alpha),
                             1.0 / tau_prime));
  return margin * threshold;
}

}  // namespace

DoublyExponentialChain doubly_exponential_chain(std::size_t n, double tau,
                                                double alpha, double beta,
                                                double margin) {
  check_tau(tau);
  if (n < 2) {
    throw std::invalid_argument("doubly_exponential_chain: need n >= 2");
  }
  const double tau_prime = std::min(tau, 1.0 - tau);
  const double x = fig2_base_x(tau_prime, alpha, beta, margin);

  // Gaps g_t = x^((1/tau')^(t-1)), t = 1..n-1: the smallest gap is x and the
  // exponents grow geometrically, so Delta is doubly exponential in n.
  const double growth = 1.0 / tau_prime;
  std::vector<double> xs;
  xs.reserve(n);
  xs.push_back(0.0);
  double exponent = 1.0;
  double pos = 0.0;
  for (std::size_t t = 1; t < n; ++t) {
    if (!util::pow_fits(x, exponent)) {
      throw std::overflow_error(
          "doubly_exponential_chain: coordinates overflow double range");
    }
    pos += std::pow(x, exponent);
    if (pos > kCoordinateGuard) {
      throw std::overflow_error(
          "doubly_exponential_chain: coordinates overflow double range");
    }
    xs.push_back(pos);
    exponent *= growth;
  }

  DoublyExponentialChain result;
  result.points = geom::line_pointset(xs);
  result.tau = tau;
  result.tau_prime = tau_prime;
  result.x = x;
  // log2(Delta) = log2(g_(n-1) / g_1) = (growth^(n-2) - 1) * log2(x).
  result.log2_delta =
      n >= 3 ? (std::pow(growth, static_cast<double>(n - 2)) - 1.0) *
                   std::log2(x)
             : 0.0;
  return result;
}

std::size_t max_doubly_exponential_size(double tau, double alpha, double beta,
                                        double margin) {
  check_tau(tau);
  const double tau_prime = std::min(tau, 1.0 - tau);
  const double x = fig2_base_x(tau_prime, alpha, beta, margin);
  const double growth = 1.0 / tau_prime;
  // Need x^(growth^(n-2)) to stay below the guard.
  double exponent = 1.0;
  std::size_t n = 2;
  while (util::pow_fits(x, exponent * growth) && n < 10000) {
    exponent *= growth;
    ++n;
  }
  return n;
}

double rho_line_instance(const geom::Pointset& sorted_points) {
  if (sorted_points.size() < 2) {
    throw std::invalid_argument("rho_line_instance: need >= 2 points");
  }
  const double left = sorted_points.front().x;
  double rho = 1.0;
  for (std::size_t i = 0; i + 1 < sorted_points.size(); ++i) {
    if (sorted_points[i + 1].x < sorted_points[i].x) {
      throw std::invalid_argument("rho_line_instance: points not sorted");
    }
    const double gap = sorted_points[i + 1].x - sorted_points[i].x;
    const double dhat = sorted_points[i + 1].x - left;
    if (dhat > 0.0) rho = std::min(rho, gap / dhat);
  }
  return rho;
}

namespace {

/// Internal line-instance representation: sorted positions, leftmost at 0.
struct LineInstance {
  std::vector<double> pos;

  [[nodiscard]] double diam() const { return pos.back(); }
  [[nodiscard]] double max_gap() const {
    double g = 0.0;
    for (std::size_t i = 0; i + 1 < pos.size(); ++i) {
      g = std::max(g, pos[i + 1] - pos[i]);
    }
    return g;
  }
  [[nodiscard]] double min_gap() const {
    double g = pos[1] - pos[0];
    for (std::size_t i = 1; i + 1 < pos.size(); ++i) {
      g = std::min(g, pos[i + 1] - pos[i]);
    }
    return g;
  }
  /// rho with the alpha exponent applied.
  [[nodiscard]] double rho_alpha(double alpha) const {
    double r = 1.0;
    for (std::size_t i = 0; i + 1 < pos.size(); ++i) {
      const double gap = pos[i + 1] - pos[i];
      r = std::min(r, gap / pos[i + 1]);
    }
    return std::pow(r, alpha);
  }
};

/// A (+) B sharing one node: B is shifted so its leftmost point coincides
/// with A's rightmost point.
LineInstance join(const LineInstance& a, const LineInstance& b) {
  LineInstance out = a;
  const double shift = a.diam();
  for (std::size_t i = 1; i < b.pos.size(); ++i) {
    out.pos.push_back(shift + b.pos[i]);
  }
  return out;
}

LineInstance scale(const LineInstance& r, double factor) {
  LineInstance out = r;
  for (double& p : out.pos) p *= factor;
  return out;
}

}  // namespace

RecursiveInstance recursive_rt(int t, double c, std::size_t copy_cap,
                               std::size_t max_nodes) {
  if (t < 1) throw std::invalid_argument("recursive_rt: t must be >= 1");
  if (!(c > 0.0)) throw std::invalid_argument("recursive_rt: c must be > 0");
  if (copy_cap < 2) {
    throw std::invalid_argument("recursive_rt: copy_cap must be >= 2");
  }
  constexpr double kAlpha = 3.0;  // rho exponent used for the copy count

  RecursiveInstance result;
  result.t = t;
  result.c = c;
  result.copy_cap = copy_cap;

  LineInstance rt;
  rt.pos = {0.0, 1.0};
  for (int level = 2; level <= t; ++level) {
    const double rho = rt.rho_alpha(kAlpha);
    const double k_exact = c / rho;
    std::size_t k = copy_cap;
    if (k_exact < static_cast<double>(copy_cap)) {
      k = std::max<std::size_t>(2, static_cast<std::size_t>(
                                       std::ceil(k_exact)));
    } else {
      result.capped = true;
    }
    result.copies_per_level.push_back(k);

    const double base_max_gap = rt.max_gap();
    LineInstance concat = rt;  // copy s = 1 is identical
    for (std::size_t s = 2; s <= k; ++s) {
      const double factor = concat.diam() / base_max_gap;
      if (factor > kCoordinateGuard / std::max(1.0, rt.diam())) {
        throw std::overflow_error("recursive_rt: coordinates overflow");
      }
      concat = join(concat, scale(rt, factor));
      if (concat.pos.size() > max_nodes) {
        throw std::overflow_error("recursive_rt: node budget exceeded");
      }
    }
    // G = two points at distance diam(R'), prepended on the left.
    LineInstance g;
    g.pos = {0.0, concat.diam()};
    if (g.pos[1] > kCoordinateGuard / 2.0) {
      throw std::overflow_error("recursive_rt: coordinates overflow");
    }
    rt = join(g, concat);
    if (rt.pos.size() > max_nodes) {
      throw std::overflow_error("recursive_rt: node budget exceeded");
    }
  }

  result.log2_delta = std::log2(rt.max_gap()) - std::log2(rt.min_gap());
  result.points = geom::line_pointset(rt.pos);
  return result;
}

}  // namespace wagg::instance
