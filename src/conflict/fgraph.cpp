#include "conflict/fgraph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "conflict/class_grid.h"

namespace wagg::conflict {

void ConflictSpec::validate() const {
  if (!(gamma > 0.0)) {
    throw std::invalid_argument("ConflictSpec: gamma must be positive");
  }
  if (kind == Kind::kPowerLaw && !(delta > 0.0 && delta < 1.0)) {
    throw std::invalid_argument("ConflictSpec: delta must lie in (0, 1)");
  }
  if (kind == Kind::kLogarithmic && !(alpha > 2.0)) {
    throw std::invalid_argument("ConflictSpec: alpha must exceed 2");
  }
}

double ConflictSpec::f(double x) const {
  if (x < 1.0) throw std::invalid_argument("ConflictSpec::f: x must be >= 1");
  switch (kind) {
    case Kind::kConstant:
      return gamma;
    case Kind::kPowerLaw:
      return gamma * std::pow(x, delta);
    case Kind::kLogarithmic: {
      const double lg = std::log2(x);
      return gamma * std::max(1.0, std::pow(lg, 2.0 / (alpha - 2.0)));
    }
  }
  throw std::logic_error("ConflictSpec::f: unknown kind");
}

bool ConflictSpec::conflicting(const geom::LinkView& links, std::size_t i,
                               std::size_t j) const {
  if (i == j) return false;
  const double li = links.length(i);
  const double lj = links.length(j);
  const double lmin = std::min(li, lj);
  const double lmax = std::max(li, lj);
  // Independent iff d(i, j) / lmin > f(lmax / lmin). Division keeps every
  // intermediate within double range even on doubly-exponential instances.
  return links.link_distance(i, j) / lmin <= f(lmax / lmin);
}

std::string ConflictSpec::name() const {
  switch (kind) {
    case Kind::kConstant:
      return "G_gamma(" + std::to_string(gamma) + ")";
    case Kind::kPowerLaw:
      return "G^delta(" + std::to_string(delta) + ",gamma=" +
             std::to_string(gamma) + ")";
    case Kind::kLogarithmic:
      return "G_log(gamma=" + std::to_string(gamma) + ")";
  }
  return "G_?";
}

ConflictSpec ConflictSpec::constant(double gamma) {
  ConflictSpec spec;
  spec.kind = Kind::kConstant;
  spec.gamma = gamma;
  spec.validate();
  return spec;
}

ConflictSpec ConflictSpec::power_law(double gamma, double delta) {
  ConflictSpec spec;
  spec.kind = Kind::kPowerLaw;
  spec.gamma = gamma;
  spec.delta = delta;
  spec.validate();
  return spec;
}

ConflictSpec ConflictSpec::logarithmic(double gamma, double alpha) {
  ConflictSpec spec;
  spec.kind = Kind::kLogarithmic;
  spec.gamma = gamma;
  spec.alpha = alpha;
  spec.validate();
  return spec;
}

Graph build_conflict_graph(const geom::LinkView& links,
                           const ConflictSpec& spec) {
  spec.validate();
  Graph graph(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    for (std::size_t j = i + 1; j < links.size(); ++j) {
      if (spec.conflicting(links, i, j)) graph.add_edge(i, j);
    }
  }
  graph.finalize();
  return graph;
}

namespace {

using DenseGrid = detail::ClassGrid<std::int32_t>;

}  // namespace

Graph build_conflict_graph_bucketed(const geom::LinkView& links,
                                    const ConflictSpec& spec) {
  spec.validate();
  Graph graph(links.size());
  if (links.size() < 2) {
    graph.finalize();
    return graph;
  }
  const double lmin = links.min_length();
  double origin_x = links.points().empty() ? 0.0 : links.points()[0].x;
  double origin_y = links.points().empty() ? 0.0 : links.points()[0].y;

  // Length class of link i: floor(log2(l_i / lmin)).
  auto class_of = [&](std::size_t i) {
    return static_cast<int>(
        std::floor(std::log2(links.length(i) / lmin)));
  };

  // Process links in non-decreasing length order; each link joins its class
  // grid after querying all classes of shorter-or-equal links, so every
  // conflicting pair is examined exactly once from its longer side.
  const auto order = links.by_increasing_length();
  std::map<int, DenseGrid> grids;
  std::vector<std::int32_t> candidates;
  for (const std::size_t i : order) {
    const int ci = class_of(i);
    const double li = links.length(i);
    candidates.clear();
    for (auto& [cs, grid] : grids) {
      // Conflicting pair (i, j) with j in class cs (all already-inserted
      // links are no longer than i, so lmin_pair = l_j >= 2^cs * lmin):
      //   d(i, j) <= l_j * f(l_i / l_j) <= 2^(cs+1) lmin * f(x_max),
      // with x_max the largest possible length ratio for the class pair.
      const double class_lo = std::exp2(static_cast<double>(cs)) * lmin;
      const double class_hi = 2.0 * class_lo;
      const double x_max = std::max(1.0, li / class_lo);
      // The 1e-12 * max(l_query, class_hi) term guards exact-boundary ties
      // against rounding in the radius product. The SAME formula is used by
      // conflict_neighbors_bucketed and ConflictIndex::neighbors, so a pair
      // sitting exactly on the conflict threshold lands in the candidate set
      // of all three (the exact predicate then decides membership
      // identically) — with differing guards a tie could appear in the built
      // graph but not in a queried row, or vice versa.
      const double radius = std::min(class_hi, li) * spec.f(x_max) +
                            1e-12 * std::max(li, class_hi);
      // Endpoint-to-endpoint distance bound; query around both endpoints.
      if (grid.query_cost(radius) >
          static_cast<double>(grid.num_links()) + 64.0) {
        // Scanning the class linearly is cheaper than walking cells.
        grid.all(candidates);
      } else {
        grid.query(links.sender_pos(i), radius, candidates);
        grid.query(links.receiver_pos(i), radius, candidates);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (const std::int32_t j : candidates) {
      if (spec.conflicting(links, i, static_cast<std::size_t>(j))) {
        graph.add_edge(i, static_cast<std::size_t>(j));
      }
    }
    auto [it, inserted] = grids.try_emplace(
        ci, std::exp2(static_cast<double>(ci)) * lmin, origin_x, origin_y);
    it->second.insert(links.sender_pos(i), static_cast<std::int32_t>(i));
    it->second.insert(links.receiver_pos(i), static_cast<std::int32_t>(i));
  }
  graph.finalize();
  return graph;
}

std::vector<std::vector<std::int32_t>> conflict_neighbors_bucketed(
    const geom::LinkView& links, const ConflictSpec& spec,
    std::span<const std::size_t> queries) {
  spec.validate();
  std::vector<std::vector<std::int32_t>> result(queries.size());
  if (links.size() < 2) return result;
  const double lmin = links.min_length();
  const double origin_x = links.points().empty() ? 0.0 : links.points()[0].x;
  const double origin_y = links.points().empty() ? 0.0 : links.points()[0].y;

  auto class_of = [&](std::size_t i) {
    return static_cast<int>(std::floor(std::log2(links.length(i) / lmin)));
  };

  // Index EVERY link (unlike the builder, a query must see both shorter and
  // longer partners).
  std::map<int, DenseGrid> grids;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const int ci = class_of(i);
    auto [it, inserted] = grids.try_emplace(
        ci, std::exp2(static_cast<double>(ci)) * lmin, origin_x, origin_y);
    it->second.insert(links.sender_pos(i), static_cast<std::int32_t>(i));
    it->second.insert(links.receiver_pos(i), static_cast<std::int32_t>(i));
  }

  std::vector<std::int32_t> candidates;
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const std::size_t q = queries[k];
    const double lq = links.length(q);
    candidates.clear();
    for (auto& [cs, grid] : grids) {
      // Two-sided bound: for partner j in class cs (class_lo <= l_j <
      // class_hi), conflict requires
      //   d(q, j) <= lmin_pair * f(lmax_pair / lmin_pair)
      // with lmin_pair <= min(lq, class_hi) and lmax_pair / lmin_pair <=
      // max(lq / class_lo, class_hi / lq, 1); f is non-decreasing, so
      // radius = min(lq, class_hi) * f(x_max) over-approximates every pair.
      const double class_lo = std::exp2(static_cast<double>(cs)) * lmin;
      const double class_hi = 2.0 * class_lo;
      const double x_max =
          std::max({1.0, lq / class_lo, class_hi / lq});
      // Exact-boundary tie guard: identical formula to the builder's (and
      // ConflictIndex's), so the three candidate sets agree on threshold
      // pairs.
      const double radius =
          std::min(lq, class_hi) * spec.f(x_max) + 1e-12 * std::max(lq, class_hi);
      if (grid.query_cost(radius) >
          static_cast<double>(grid.num_links()) + 64.0) {
        grid.all(candidates);
      } else {
        grid.query(links.sender_pos(q), radius, candidates);
        grid.query(links.receiver_pos(q), radius, candidates);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    auto& row = result[k];
    for (const std::int32_t j : candidates) {
      if (spec.conflicting(links, q, static_cast<std::size_t>(j))) {
        row.push_back(j);
      }
    }
  }
  return result;
}

}  // namespace wagg::conflict
