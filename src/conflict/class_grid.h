#ifndef WAGG_CONFLICT_CLASS_GRID_H
#define WAGG_CONFLICT_CLASS_GRID_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "geom/point.h"

namespace wagg::conflict::detail {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t v) noexcept {
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ULL;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return v;
}

/// Cell key of integer grid coordinates. Both coordinates pass through a
/// full-width mix before combining, so coordinates beyond 32 bits (huge
/// extents or tiny cells) produce scattered — not systematically aliased —
/// keys. The old `(x << 32) ^ (y & 0xffffffff)` scheme silently collapsed
/// every x with equal low bits onto one bucket past 2^32, inflating
/// candidate lists. Deterministic: a pure function of (x, y).
[[nodiscard]] inline std::uint64_t cell_key(std::int64_t x,
                                            std::int64_t y) noexcept {
  return mix64(static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL) ^
         mix64(static_cast<std::uint64_t>(y) + 0x517cc1b727220a95ULL);
}

/// floor() result saturated into int64 — coordinates farther than 2^62 cells
/// from the origin clamp to the boundary instead of invoking UB on the cast.
/// Clamped cells merge, which only ever widens candidate lists (queries and
/// inserts saturate identically), never drops a true neighbor cell.
[[nodiscard]] inline std::int64_t saturating_cell(double q) noexcept {
  constexpr double kLimit = 4.611686018427387904e18;  // 2^62
  if (!(q > -kLimit)) return -(1LL << 62);            // also catches NaN
  if (q >= kLimit) return 1LL << 62;
  return static_cast<std::int64_t>(std::floor(q));
}

/// Uniform grid over the link endpoints of one power-of-two length class.
/// Values are link identifiers (dense indices for the one-shot builders,
/// stable LinkIds for the persistent ConflictIndex); every link contributes
/// exactly two entries, one per endpoint.
template <typename V>
class ClassGrid {
 public:
  ClassGrid(double cell, double origin_x, double origin_y)
      : cell_(cell), origin_x_(origin_x), origin_y_(origin_y) {}

  void insert(const geom::Point& p, V value) {
    const auto [cx, cy] = coords(p);
    auto& cell = cells_[cell_key(cx, cy)];
    if (cell.values.empty()) {
      cell.cx = cx;
      cell.cy = cy;
    }
    cell.values.push_back(value);
    ++num_values_;
  }

  /// Removes one (p, value) entry inserted earlier; `p` must be the exact
  /// point given to insert (same bits, same cell). Throws std::logic_error
  /// when the entry is absent — the caller's bookkeeping desynchronized.
  void erase(const geom::Point& p, V value) {
    const auto it = cells_.find(key(p));
    if (it == cells_.end()) {
      throw std::logic_error("ClassGrid::erase: cell not found");
    }
    auto& bucket = it->second.values;
    const auto pos = std::find(bucket.begin(), bucket.end(), value);
    if (pos == bucket.end()) {
      throw std::logic_error("ClassGrid::erase: value not in cell");
    }
    *pos = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) cells_.erase(it);
    --num_values_;
  }

  /// Collects values with an endpoint within `radius` of p (over-approximate:
  /// visits all cells intersecting the bounding square).
  void query(const geom::Point& p, double radius,
             std::vector<V>& out) const {
    const auto [cx, cy] = coords(p);
    const std::int64_t reach = reach_of(radius);
    for (std::int64_t dx = -reach; dx <= reach; ++dx) {
      for (std::int64_t dy = -reach; dy <= reach; ++dy) {
        const auto it = cells_.find(cell_key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        out.insert(out.end(), it->second.values.begin(),
                   it->second.values.end());
      }
    }
  }

  /// Collects values with an endpoint within `radius` of `a` OR of `b`
  /// (over-approximate, cell granularity — the union of two query() calls,
  /// possibly with duplicates). Unlike query(), this stays cheap for radii
  /// spanning many cells: when walking the two bounding squares would touch
  /// more cells than the class occupies, it scans the occupied cells and
  /// prunes each by the SAME cell-coordinate criterion the walk uses, so
  /// both paths produce the identical candidate set.
  void collect(const geom::Point& a, const geom::Point& b, double radius,
               std::vector<V>& out) const {
    if (2.0 * query_cost(radius) <=
        static_cast<double>(cells_.size()) + 64.0) {
      query(a, radius, out);
      query(b, radius, out);
      return;
    }
    const auto [ax, ay] = coords(a);
    const auto [bx, by] = coords(b);
    const std::int64_t reach = reach_of(radius);
    // Interval bounds instead of |c - p| <= reach: coordinates saturate to
    // +-2^62 and reach is clamped below 2^62, so p +- reach stays within
    // int64 range, whereas the subtraction could overflow for opposite-side
    // saturated operands.
    const std::int64_t axl = ax - reach, axh = ax + reach;
    const std::int64_t ayl = ay - reach, ayh = ay + reach;
    const std::int64_t bxl = bx - reach, bxh = bx + reach;
    const std::int64_t byl = by - reach, byh = by + reach;
    for (const auto& [k, cell] : cells_) {
      const bool near_a = cell.cx >= axl && cell.cx <= axh &&
                          cell.cy >= ayl && cell.cy <= ayh;
      const bool near_b = cell.cx >= bxl && cell.cx <= bxh &&
                          cell.cy >= byl && cell.cy <= byh;
      if (!near_a && !near_b) continue;
      out.insert(out.end(), cell.values.begin(), cell.values.end());
    }
  }

  /// Number of cells a query of this radius would visit.
  [[nodiscard]] double query_cost(double radius) const {
    const double reach = radius / cell_ + 1.0;
    return (2.0 * reach + 1.0) * (2.0 * reach + 1.0);
  }

  /// Collects every value in the class (linear scan fallback).
  void all(std::vector<V>& out) const {
    for (const auto& [k, cell] : cells_) {
      out.insert(out.end(), cell.values.begin(), cell.values.end());
    }
  }

  /// Entries stored (two per link: one per endpoint).
  [[nodiscard]] std::size_t num_values() const noexcept { return num_values_; }
  /// Links stored.
  [[nodiscard]] std::size_t num_links() const noexcept {
    return num_values_ / 2;
  }
  [[nodiscard]] std::size_t num_cells() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return num_values_ == 0; }

 private:
  /// One occupied cell; the coordinates allow distance pruning when
  /// scanning occupied cells instead of walking a query square (the mixed
  /// map key cannot be inverted).
  struct Cell {
    std::int64_t cx = 0;
    std::int64_t cy = 0;
    std::vector<V> values;
  };

  [[nodiscard]] std::int64_t reach_of(double radius) const {
    return static_cast<std::int64_t>(std::min(radius / cell_, 4.0e18)) + 1;
  }
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> coords(
      const geom::Point& p) const {
    return {saturating_cell((p.x - origin_x_) / cell_),
            saturating_cell((p.y - origin_y_) / cell_)};
  }
  [[nodiscard]] std::uint64_t key(const geom::Point& p) const {
    const auto [cx, cy] = coords(p);
    return cell_key(cx, cy);
  }

  double cell_;
  double origin_x_;
  double origin_y_;
  std::size_t num_values_ = 0;
  std::unordered_map<std::uint64_t, Cell> cells_;
};

}  // namespace wagg::conflict::detail

#endif  // WAGG_CONFLICT_CLASS_GRID_H
