#ifndef WAGG_CONFLICT_CONFLICT_INDEX_H
#define WAGG_CONFLICT_CONFLICT_INDEX_H

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "conflict/class_grid.h"
#include "conflict/fgraph.h"
#include "geom/link_view.h"
#include "geom/point.h"

namespace wagg::conflict {

namespace detail {

/// A relaxed-order telemetry counter that stays copyable/movable (raw
/// std::atomic would delete the owner's move constructor). Relaxed is
/// enough: each count is independent, and the owning index requires
/// exclusive access for everything except stats() snapshots anyway.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& other)
      : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t load() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace detail

/// Maintenance and shape counters of a ConflictIndex, snapshotted by value
/// from ConflictIndex::stats(). maintain_ms is the accumulated wall clock of
/// every add/remove/update since construction — callers diff it across an
/// epoch to attribute index upkeep separately from query time.
struct ConflictIndexStats {
  std::size_t adds = 0;
  std::size_t removes = 0;
  std::size_t updates = 0;
  /// Updates that moved a link to a different length class.
  std::size_t reclasses = 0;
  double maintain_ms = 0.0;
  /// Rows answered — one per query index across all neighbors() calls.
  std::uint64_t rows_queried = 0;
  /// Grid candidates skipped because the visit stamp already saw them via
  /// the other endpoint bucket of the same row computation.
  std::uint64_t dedupe_hits = 0;
  /// Candidates rejected by the squared-distance prune before the exact
  /// conflict predicate ran.
  std::uint64_t cells_pruned = 0;
  // ---- materialized row cache ----
  /// Queries served as an O(row) copy of a cached id-space row.
  std::uint64_t row_cache_hits = 0;
  /// Queries that computed their row from the grids (and cached it).
  std::uint64_t row_cache_misses = 0;
  /// Single-id insert/erase edits applied to cached rows on the mutation
  /// path (the diff maintenance work).
  std::uint64_t row_cache_patches = 0;
  /// Cached rows dropped for a reason other than capacity: spec change,
  /// link removal/re-class-update of the row's owner, clear().
  std::uint64_t row_cache_invalidations = 0;
  /// Cached rows dropped by the LRU capacity sweep.
  std::uint64_t row_cache_evictions = 0;
  /// Rows currently materialized (a gauge, not a monotone counter).
  std::size_t rows_cached = 0;
};

/// A persistent, mutation-aware version of the per-length-class bucket grids
/// that build_conflict_graph_bucketed / conflict_neighbors_bucketed erect
/// from scratch on every call. The index lives alongside a geom::LinkStore
/// across epochs and is maintained under add / remove / update by stable
/// LinkId, so a dynamic planner answers dirty-row conflict queries with ZERO
/// per-epoch rebuild — O(dirty) queries against standing state instead of an
/// O(n) grid construction.
///
/// Length classes are anchored to ABSOLUTE lengths: class c holds links with
/// length in [2^c, 2^(c+1)), cell size 2^c. The one-shot builders anchor to
/// the instance's min_length, which drifts under churn — an absolute anchor
/// means a link is re-classed only when ITS OWN length crosses a power of
/// two (lazy re-classing: update() moves it between grids just then), never
/// because some other link shrank the global minimum. Query radii are
/// computed from each class's actual absolute bounds, so the answers are
/// identical to the from-scratch builders (property-tested; audit mode
/// cross-checks every epoch).
///
/// On top of the grids the index keeps a MATERIALIZED ROW CACHE: the exact
/// id-space conflict row of a link under the spec of the most recent query,
/// maintained by DIFF on the mutation path. conflict(y, z) depends only on
/// the geometry of y and z, so a mutation at link x can change only rows
/// containing x: add/update compute x's new row once (one grid probe) and
/// insert x into the cached rows of exactly those partners; remove/update
/// erase x from the cached rows it sat in (x's own cached row names them
/// exactly; a grid probe over the OLD geometry bounds them otherwise). An
/// epoch with k mutations therefore touches O(k · row-degree) cache entries,
/// and neighbors() serves every unchanged dirty row — notably links dirtied
/// only by orientation flips, which never reach the index — as an O(row)
/// copy instead of a grid probe. Rows live in id-space (dense indices are
/// per-epoch) and are translated through the view at query time; id order
/// equals dense order, so translated rows stay sorted. The cache is keyed to
/// one ConflictSpec at a time: a query under a different spec flushes it.
/// Capacity is bounded by a total-entry cap with deterministic
/// least-recently-used eviction (recency is a monotone use serial, never
/// wall clock, so runs replay bit-identically).
///
/// The index stores endpoint positions by value: the owning planner feeds
/// them in on every geometry change (LinkStore carries node ids, not
/// positions). Queries take the per-epoch geom::LinkView snapshot of the
/// same store — the view supplies the dense-index space of the answer rows;
/// its geometry must be bit-identical to the mirrored columns (both sides of
/// the planner copy the same coordinates), which audit mode re-checks every
/// epoch by comparing against the view-based from-scratch builder.
///
/// Thread safety: NONE — one session per thread, like the DynamicPlanner
/// that owns it. Mutations obviously require exclusive access; neighbors()
/// and build_graph() are logically const but memoize rows and reuse stamp
/// scratch internally, so even concurrent const queries on one instance are
/// data races. The query-side counters are relaxed atomics purely so that
/// stats() reads taken while another thread OWNS the index (e.g. a metrics
/// scraper racing a planner epoch) are well-defined loads rather than UB —
/// they do not make any other member safe to share.
class ConflictIndex {
 public:
  ConflictIndex() = default;

  /// Inserts a live link. `id` must not already be present
  /// (std::invalid_argument); length must be positive.
  void add(geom::LinkId id, const geom::Point& sender,
           const geom::Point& receiver, double length);

  /// Drops a link. Throws std::invalid_argument on unknown ids.
  void remove(geom::LinkId id);

  /// Refreshes a link's endpoints/length after its geometry changed.
  /// Re-classing happens lazily: the link moves to another grid only when
  /// its length crossed a class boundary; an in-class move just re-buckets
  /// the two endpoint cells. A bit-identical geometry refresh (the
  /// set_length + touch double fire of the store's refresh path) touches
  /// neither the grids nor the row cache.
  void update(geom::LinkId id, const geom::Point& sender,
              const geom::Point& receiver, double length);

  /// Drops every link and every cached row. Counters and accumulated stats
  /// survive; the re-seed path (planner reconcile_full) relies on this to
  /// guarantee a failed epoch cannot leave stale rows behind.
  void clear();

  [[nodiscard]] bool contains(geom::LinkId id) const noexcept {
    return id >= 0 && static_cast<std::size_t>(id) < entries_.size() &&
           entries_[static_cast<std::size_t>(id)].live;
  }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// Non-empty length classes currently held.
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classes_.size();
  }
  /// Snapshot of the lifetime counters (by value: the query-side fields are
  /// atomics internally, composed into a plain struct here).
  [[nodiscard]] ConflictIndexStats stats() const noexcept;

  /// Rows currently materialized in the cache.
  [[nodiscard]] std::size_t rows_cached() const noexcept { return rows_live_; }

  /// Total cached row entries (sum of cached row sizes) the LRU sweep keeps
  /// the cache under. Lowering the cap evicts immediately; 0 disables
  /// caching entirely (every query recomputes, nothing is stored).
  void set_row_cache_entry_cap(std::size_t cap);
  [[nodiscard]] std::size_t row_cache_entry_cap() const noexcept {
    return row_cache_entry_cap_;
  }

  /// Conflict rows for a subset of dense link indices: result[k] holds the
  /// sorted dense indices conflicting with queries[k] — byte-identical to
  /// conflict_neighbors_bucketed on the same view, without its O(n) per-call
  /// grid build. Cached rows are served as copies; misses compute the row
  /// from the standing grids and materialize it. `links` must be the
  /// snapshot of the store this index mirrors (same live ids, increasing-id
  /// dense order, bit-identical geometry); a desynchronized view throws
  /// std::logic_error.
  [[nodiscard]] std::vector<std::vector<std::int32_t>> neighbors(
      const geom::LinkView& links, const ConflictSpec& spec,
      std::span<const std::size_t> queries) const;

  /// The full conflict graph G_f assembled from index queries (one row per
  /// link) — equal to build_conflict_graph_bucketed on the same view. Used
  /// by full-replan fallbacks that already pay for an index so even the
  /// fallback skips the from-scratch grid construction. Warms the row cache
  /// as a side effect (every row materializes), which is what hands the
  /// initial full plan's rows to the following incremental epochs.
  [[nodiscard]] Graph build_graph(const geom::LinkView& links,
                                  const ConflictSpec& spec) const;

 private:
  struct Entry {
    geom::Point sender{};
    geom::Point receiver{};
    double length = 0.0;
    int cls = 0;
    bool live = false;
  };

  /// A materialized conflict row: the exact sorted id-space neighbor set of
  /// its owner under cached_spec_, kept exact by diff patching.
  struct Row {
    std::vector<geom::LinkId> ids;
    std::uint64_t last_used = 0;  ///< monotone use serial (LRU key)
    bool cached = false;
  };

  [[nodiscard]] Entry& checked(geom::LinkId id);
  /// Inserts into (possibly creating) the class grid.
  void grid_insert(const Entry& entry, geom::LinkId id);
  /// Erases from the class grid, dropping the grid when it empties.
  void grid_erase(const Entry& entry, geom::LinkId id);

  /// Exact conflict predicate on index entries — bit-identical to
  /// ConflictSpec::conflicting on a view with the same geometry (coincident
  /// endpoints give an exact 0.0 distance either way). Self-pairs must be
  /// excluded by id before calling.
  [[nodiscard]] bool conflicting_entries(const Entry& a,
                                         const Entry& b) const;
  /// Deduplicated grid candidates around the given geometry (the same
  /// two-sided class radius as the one-shot builders). May include the
  /// probing link's own id. `prune` additionally applies the squared
  /// distance prune (exact-row computation wants it; erase-target probing
  /// wants the raw superset).
  void collect_candidates(const geom::Point& sender,
                          const geom::Point& receiver, double length,
                          bool prune,
                          std::vector<geom::LinkId>& out) const;
  /// The exact sorted id-space conflict row of live link `id` under
  /// cached_spec_, computed from the grids.
  [[nodiscard]] std::vector<geom::LinkId> compute_row(geom::LinkId id) const;

  /// Stores `ids` as the cached row of `id` and bumps its recency.
  void store_row(geom::LinkId id, std::vector<geom::LinkId> ids) const;
  /// Drops the cached row of `id` if present, charging `counter`.
  void drop_row(geom::LinkId id, detail::RelaxedCounter& counter) const;
  /// Erases `x` from the cached rows of every id in `targets` (no-op for
  /// uncached targets and rows not containing x).
  void patch_erase(std::span<const geom::LinkId> targets, geom::LinkId x);
  /// Inserts `x` into the cached rows of every id in `targets`.
  void patch_insert(std::span<const geom::LinkId> targets, geom::LinkId x);
  /// Drops every cached row (spec change / clear), charging `counter`.
  void flush_rows(detail::RelaxedCounter& counter) const;
  /// LRU capacity sweep: evicts least-recently-used rows down to half the
  /// cap once the entry total exceeds it.
  void maybe_evict() const;

  std::vector<Entry> entries_;  ///< indexed by LinkId (ids never reused)
  std::map<int, detail::ClassGrid<geom::LinkId>> classes_;
  /// Query scratch (per-id visit stamps + candidate buffers): logically
  /// const, reused across row computations. One reason the index is not
  /// thread-safe.
  mutable std::vector<std::uint64_t> stamp_;
  mutable std::uint64_t stamp_serial_ = 0;
  mutable std::vector<geom::LinkId> candidates_scratch_;
  mutable std::vector<geom::LinkId> row_scratch_;
  std::size_t live_ = 0;
  /// Grid origin, captured from the first endpoint ever inserted to keep
  /// cell coordinates small on far-from-zero instances.
  bool have_origin_ = false;
  double origin_x_ = 0.0;
  double origin_y_ = 0.0;

  // ---- materialized row cache (logically const memoization) ----
  mutable std::vector<Row> rows_;  ///< indexed by LinkId, like entries_
  mutable std::size_t rows_live_ = 0;      ///< rows currently cached
  mutable std::size_t cached_entries_ = 0;  ///< sum of cached row sizes
  mutable std::uint64_t use_serial_ = 0;    ///< monotone recency clock
  mutable ConflictSpec cached_spec_{};
  mutable bool cache_enabled_ = false;  ///< cached_spec_ is meaningful
  std::size_t row_cache_entry_cap_ = kDefaultRowCacheEntryCap;
  static constexpr std::size_t kDefaultRowCacheEntryCap = std::size_t{1}
                                                          << 22;

  // ---- counters ----
  // Mutation-path counters are plain fields (mutations require exclusive
  // access anyway); query-path counters are relaxed atomics so that a
  // stats() racing the owning thread reads defined values (see the class
  // comment — this is telemetry hygiene, not thread safety).
  std::size_t adds_ = 0;
  std::size_t removes_ = 0;
  std::size_t updates_ = 0;
  std::size_t reclasses_ = 0;
  double maintain_ms_ = 0.0;
  std::uint64_t row_patches_ = 0;
  mutable detail::RelaxedCounter rows_queried_;
  mutable detail::RelaxedCounter dedupe_hits_;
  mutable detail::RelaxedCounter cells_pruned_;
  mutable detail::RelaxedCounter row_hits_;
  mutable detail::RelaxedCounter row_misses_;
  mutable detail::RelaxedCounter row_invalidations_;
  mutable detail::RelaxedCounter row_evictions_;
};

}  // namespace wagg::conflict

#endif  // WAGG_CONFLICT_CONFLICT_INDEX_H
