#ifndef WAGG_CONFLICT_CONFLICT_INDEX_H
#define WAGG_CONFLICT_CONFLICT_INDEX_H

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "conflict/class_grid.h"
#include "conflict/fgraph.h"
#include "geom/link_view.h"
#include "geom/point.h"

namespace wagg::conflict {

/// Maintenance and shape counters of a ConflictIndex. maintain_ms is the
/// accumulated wall clock of every add/remove/update since construction —
/// callers diff it across an epoch to attribute index upkeep separately
/// from query time.
struct ConflictIndexStats {
  std::size_t adds = 0;
  std::size_t removes = 0;
  std::size_t updates = 0;
  /// Updates that moved a link to a different length class.
  std::size_t reclasses = 0;
  double maintain_ms = 0.0;
  /// Query-side shape counters (neighbors() is const; these are telemetry).
  /// Rows answered — one per query index across all neighbors() calls.
  std::uint64_t rows_queried = 0;
  /// Grid candidates skipped because the visit stamp already saw them via
  /// the other endpoint bucket of the same query.
  std::uint64_t dedupe_hits = 0;
  /// Candidates rejected by the squared-distance prune before the exact
  /// conflict predicate ran.
  std::uint64_t cells_pruned = 0;
};

/// A persistent, mutation-aware version of the per-length-class bucket grids
/// that build_conflict_graph_bucketed / conflict_neighbors_bucketed erect
/// from scratch on every call. The index lives alongside a geom::LinkStore
/// across epochs and is maintained under add / remove / update by stable
/// LinkId, so a dynamic planner answers dirty-row conflict queries with ZERO
/// per-epoch rebuild — O(dirty) queries against standing state instead of an
/// O(n) grid construction.
///
/// Length classes are anchored to ABSOLUTE lengths: class c holds links with
/// length in [2^c, 2^(c+1)), cell size 2^c. The one-shot builders anchor to
/// the instance's min_length, which drifts under churn — an absolute anchor
/// means a link is re-classed only when ITS OWN length crosses a power of
/// two (lazy re-classing: update() moves it between grids just then), never
/// because some other link shrank the global minimum. Query radii are
/// computed from each class's actual absolute bounds, so the answers are
/// identical to the from-scratch builders (property-tested; audit mode
/// cross-checks every epoch).
///
/// The index stores endpoint positions by value: the owning planner feeds
/// them in on every geometry change (LinkStore carries node ids, not
/// positions). Queries take the per-epoch geom::LinkView snapshot of the
/// same store — the view supplies the dense-index space of the answer rows
/// and the exact-predicate geometry; the index supplies the candidates.
class ConflictIndex {
 public:
  ConflictIndex() = default;

  /// Inserts a live link. `id` must not already be present
  /// (std::invalid_argument); length must be positive.
  void add(geom::LinkId id, const geom::Point& sender,
           const geom::Point& receiver, double length);

  /// Drops a link. Throws std::invalid_argument on unknown ids.
  void remove(geom::LinkId id);

  /// Refreshes a link's endpoints/length after its geometry changed.
  /// Re-classing happens lazily: the link moves to another grid only when
  /// its length crossed a class boundary; an in-class move just re-buckets
  /// the two endpoint cells (and a pure metadata change touches no cell).
  void update(geom::LinkId id, const geom::Point& sender,
              const geom::Point& receiver, double length);

  /// Drops every link. Counters and accumulated stats survive.
  void clear();

  [[nodiscard]] bool contains(geom::LinkId id) const noexcept {
    return id >= 0 && static_cast<std::size_t>(id) < entries_.size() &&
           entries_[static_cast<std::size_t>(id)].live;
  }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// Non-empty length classes currently held.
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] const ConflictIndexStats& stats() const noexcept {
    return stats_;
  }

  /// Conflict rows for a subset of dense link indices, computed against the
  /// standing grids: result[k] holds the sorted dense indices conflicting
  /// with queries[k] — byte-identical to conflict_neighbors_bucketed on the
  /// same view, without its O(n) per-call grid build. `links` must be the
  /// snapshot of the store this index mirrors (same live ids, increasing-id
  /// dense order); a desynchronized view throws std::logic_error.
  [[nodiscard]] std::vector<std::vector<std::int32_t>> neighbors(
      const geom::LinkView& links, const ConflictSpec& spec,
      std::span<const std::size_t> queries) const;

  /// The full conflict graph G_f assembled from index queries (one row per
  /// link) — equal to build_conflict_graph_bucketed on the same view. Used
  /// by full-replan fallbacks that already pay for an index so even the
  /// fallback skips the from-scratch grid construction.
  [[nodiscard]] Graph build_graph(const geom::LinkView& links,
                                  const ConflictSpec& spec) const;

 private:
  struct Entry {
    geom::Point sender{};
    geom::Point receiver{};
    double length = 0.0;
    int cls = 0;
    bool live = false;
  };

  [[nodiscard]] Entry& checked(geom::LinkId id);
  /// Inserts into (possibly creating) the class grid.
  void grid_insert(const Entry& entry, geom::LinkId id);
  /// Erases from the class grid, dropping the grid when it empties.
  void grid_erase(const Entry& entry, geom::LinkId id);

  std::vector<Entry> entries_;  ///< indexed by LinkId (ids never reused)
  std::map<int, detail::ClassGrid<geom::LinkId>> classes_;
  /// Query scratch (per-id visit stamps): logically const, reused across
  /// neighbors() calls. One reason the index is not thread-safe.
  mutable std::vector<std::uint64_t> stamp_;
  mutable std::uint64_t stamp_serial_ = 0;
  std::size_t live_ = 0;
  /// Grid origin, captured from the first endpoint ever inserted to keep
  /// cell coordinates small on far-from-zero instances.
  bool have_origin_ = false;
  double origin_x_ = 0.0;
  double origin_y_ = 0.0;
  /// Mutable for the query-side counters: neighbors() is logically const.
  mutable ConflictIndexStats stats_;
};

}  // namespace wagg::conflict

#endif  // WAGG_CONFLICT_CONFLICT_INDEX_H
