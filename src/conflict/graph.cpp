#include "conflict/graph.h"

#include <algorithm>
#include <stdexcept>

namespace wagg::conflict {

Graph::Graph(std::size_t num_vertices) : adjacency_(num_vertices) {}

void Graph::add_edge(std::size_t u, std::size_t v) {
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    throw std::out_of_range("Graph::add_edge: vertex out of range");
  }
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  adjacency_[u].push_back(static_cast<std::int32_t>(v));
  adjacency_[v].push_back(static_cast<std::int32_t>(u));
  finalized_ = false;
}

void Graph::finalize() {
  if (finalized_) return;
  num_edges_ = 0;
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    num_edges_ += adj.size();
  }
  num_edges_ /= 2;
  finalized_ = true;
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    throw std::out_of_range("Graph::has_edge: vertex out of range");
  }
  if (!finalized_) {
    throw std::logic_error("Graph::has_edge: call finalize() first");
  }
  const auto& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(),
                            static_cast<std::int32_t>(v));
}

std::span<const std::int32_t> Graph::neighbors(std::size_t v) const {
  return adjacency_.at(v);
}

std::size_t Graph::degree(std::size_t v) const {
  return adjacency_.at(v).size();
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& adj : adjacency_) d = std::max(d, adj.size());
  return d;
}

bool Graph::is_independent(std::span<const std::size_t> set) const {
  if (!finalized_) {
    throw std::logic_error("Graph::is_independent: call finalize() first");
  }
  for (std::size_t a = 0; a < set.size(); ++a) {
    for (std::size_t b = a + 1; b < set.size(); ++b) {
      if (has_edge(set[a], set[b])) return false;
    }
  }
  return true;
}

}  // namespace wagg::conflict
