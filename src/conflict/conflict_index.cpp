#include "conflict/conflict_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/clock.h"

namespace wagg::conflict {

namespace {

/// Absolute length class: c such that length lies in [2^c, 2^(c+1)).
[[nodiscard]] int class_of(double length) {
  return static_cast<int>(std::floor(std::log2(length)));
}

}  // namespace

ConflictIndex::Entry& ConflictIndex::checked(geom::LinkId id) {
  if (!contains(id)) {
    throw std::invalid_argument("ConflictIndex: unknown link id " +
                                std::to_string(id));
  }
  return entries_[static_cast<std::size_t>(id)];
}

void ConflictIndex::grid_insert(const Entry& entry, geom::LinkId id) {
  auto [it, inserted] = classes_.try_emplace(
      entry.cls, std::exp2(static_cast<double>(entry.cls)), origin_x_,
      origin_y_);
  it->second.insert(entry.sender, id);
  it->second.insert(entry.receiver, id);
}

void ConflictIndex::grid_erase(const Entry& entry, geom::LinkId id) {
  const auto it = classes_.find(entry.cls);
  if (it == classes_.end()) {
    throw std::logic_error("ConflictIndex: class grid missing for live link");
  }
  it->second.erase(entry.sender, id);
  it->second.erase(entry.receiver, id);
  if (it->second.empty()) classes_.erase(it);
}

bool ConflictIndex::conflicting_entries(const Entry& a,
                                        const Entry& b) const {
  const double lmin = std::min(a.length, b.length);
  const double lmax = std::max(a.length, b.length);
  // Same operand roles and association as LinkView::link_distance; links
  // sharing a node carry bit-identical endpoint coordinates, so the min is
  // an exact 0.0 there, matching the view's shares_node short-circuit.
  const double d =
      std::min(std::min(geom::distance(a.sender, b.sender),
                        geom::distance(a.sender, b.receiver)),
               std::min(geom::distance(a.receiver, b.sender),
                        geom::distance(a.receiver, b.receiver)));
  return d / lmin <= cached_spec_.f(lmax / lmin);
}

void ConflictIndex::collect_candidates(const geom::Point& sender,
                                       const geom::Point& receiver,
                                       double length, bool prune,
                                       std::vector<geom::LinkId>& out) const {
  out.clear();
  if (stamp_.size() < entries_.size()) stamp_.resize(entries_.size(), 0);
  const std::uint64_t serial = ++stamp_serial_;
  std::uint64_t dedupe = 0;
  std::uint64_t pruned = 0;
  auto& candidates = candidates_scratch_;
  for (const auto& [cs, grid] : classes_) {
    // Two-sided bound, identical to conflict_neighbors_bucketed but with
    // ABSOLUTE class bounds: partner j in class cs has
    // class_lo <= l_j < class_hi, so conflict requires
    //   d(q, j) <= lmin_pair * f(lmax_pair / lmin_pair)
    // with lmin_pair <= min(lq, class_hi) and the ratio at most x_max;
    // f non-decreasing makes the radius an over-approximation of every
    // pair. Guard formula matches the one-shot builders exactly so
    // threshold ties agree across all three.
    const double class_lo = std::exp2(static_cast<double>(cs));
    const double class_hi = 2.0 * class_lo;
    const double x_max = std::max({1.0, length / class_lo,
                                   class_hi / length});
    const double radius = std::min(length, class_hi) * cached_spec_.f(x_max) +
                          1e-12 * std::max(length, class_hi);
    // The exact-distance prune needs its own RELATIVE slack: for specs
    // with large f the absolute 1e-12 * max(...) term can fall below one
    // ulp of the radius product, and a threshold pair the exact predicate
    // accepts (its comparison carries ~ulp rounding of its own) would be
    // pruned. The cell-granularity collect is immune — it always has a
    // full cell of slack — so only the squared threshold is inflated.
    const double prune_radius = radius * (1.0 + 4e-12);
    const double radius2 = prune_radius * prune_radius;
    candidates.clear();
    grid.collect(sender, receiver, radius, candidates);
    for (const geom::LinkId id : candidates) {
      const auto slot = static_cast<std::size_t>(id);
      if (stamp_[slot] == serial) {  // seen via the other endpoint
        ++dedupe;
        continue;
      }
      stamp_[slot] = serial;
      if (prune) {
        // Cheap squared-distance prune before the exact predicate: the
        // radius over-approximates every conflict distance for this class,
        // so anything farther cannot conflict. Overflowing products land on
        // +inf and the comparison keeps the pair (the exact predicate is
        // overflow-safe), never drops it.
        const Entry& entry = entries_[slot];
        const double d2 =
            std::min(std::min(geom::squared_distance(sender, entry.sender),
                              geom::squared_distance(sender, entry.receiver)),
                     std::min(geom::squared_distance(receiver, entry.sender),
                              geom::squared_distance(receiver,
                                                     entry.receiver)));
        if (d2 > radius2) {
          ++pruned;
          continue;
        }
      }
      out.push_back(id);
    }
  }
  if (dedupe != 0) dedupe_hits_.add(dedupe);
  if (pruned != 0) cells_pruned_.add(pruned);
}

std::vector<geom::LinkId> ConflictIndex::compute_row(geom::LinkId id) const {
  const auto slot = static_cast<std::size_t>(id);
  const Entry& e = entries_[slot];
  collect_candidates(e.sender, e.receiver, e.length, /*prune=*/true,
                     row_scratch_);
  std::vector<geom::LinkId> row;
  row.reserve(row_scratch_.size());
  for (const geom::LinkId cid : row_scratch_) {
    if (cid == id) continue;  // a link's own endpoints are grid candidates
    if (conflicting_entries(e, entries_[static_cast<std::size_t>(cid)])) {
      row.push_back(cid);
    }
  }
  std::sort(row.begin(), row.end());
  return row;
}

void ConflictIndex::store_row(geom::LinkId id,
                              std::vector<geom::LinkId> ids) const {
  if (row_cache_entry_cap_ == 0) return;
  const auto slot = static_cast<std::size_t>(id);
  if (rows_.size() <= slot) rows_.resize(slot + 1);
  auto& row = rows_[slot];
  if (row.cached) {
    cached_entries_ -= row.ids.size();
  } else {
    row.cached = true;
    ++rows_live_;
  }
  row.ids = std::move(ids);
  cached_entries_ += row.ids.size();
  row.last_used = ++use_serial_;
}

void ConflictIndex::drop_row(geom::LinkId id,
                             detail::RelaxedCounter& counter) const {
  const auto slot = static_cast<std::size_t>(id);
  if (slot >= rows_.size() || !rows_[slot].cached) return;
  auto& row = rows_[slot];
  cached_entries_ -= row.ids.size();
  row.ids.clear();
  row.ids.shrink_to_fit();
  row.cached = false;
  --rows_live_;
  counter.add(1);
}

void ConflictIndex::patch_erase(std::span<const geom::LinkId> targets,
                                geom::LinkId x) {
  std::uint64_t patches = 0;
  for (const geom::LinkId y : targets) {
    if (y == x) continue;
    const auto slot = static_cast<std::size_t>(y);
    if (slot >= rows_.size() || !rows_[slot].cached) continue;
    auto& ids = rows_[slot].ids;
    const auto it = std::lower_bound(ids.begin(), ids.end(), x);
    if (it != ids.end() && *it == x) {
      ids.erase(it);
      --cached_entries_;
      ++patches;
    }
  }
  row_patches_ += patches;
}

void ConflictIndex::patch_insert(std::span<const geom::LinkId> targets,
                                 geom::LinkId x) {
  std::uint64_t patches = 0;
  for (const geom::LinkId y : targets) {
    if (y == x) continue;
    const auto slot = static_cast<std::size_t>(y);
    if (slot >= rows_.size() || !rows_[slot].cached) continue;
    auto& ids = rows_[slot].ids;
    const auto it = std::lower_bound(ids.begin(), ids.end(), x);
    if (it == ids.end() || *it != x) {
      ids.insert(it, x);
      ++cached_entries_;
      ++patches;
    }
  }
  row_patches_ += patches;
}

void ConflictIndex::flush_rows(detail::RelaxedCounter& counter) const {
  if (rows_live_ != 0) {
    counter.add(static_cast<std::uint64_t>(rows_live_));
  }
  rows_.clear();
  rows_live_ = 0;
  cached_entries_ = 0;
}

void ConflictIndex::maybe_evict() const {
  if (row_cache_entry_cap_ == 0 || cached_entries_ <= row_cache_entry_cap_) {
    return;
  }
  // Deterministic LRU: recency is the monotone use serial (bumped on query
  // use and materialization, never by patches), so every run evicts the
  // same rows in the same order — no wall clock anywhere near the cache.
  std::vector<std::pair<std::uint64_t, geom::LinkId>> order;
  order.reserve(rows_live_);
  for (std::size_t slot = 0; slot < rows_.size(); ++slot) {
    if (rows_[slot].cached) {
      order.emplace_back(rows_[slot].last_used,
                         static_cast<geom::LinkId>(slot));
    }
  }
  std::sort(order.begin(), order.end());
  // Hysteresis: sweep down to half the cap so a cache sitting at the
  // boundary does not evict on every materialization.
  const std::size_t target = row_cache_entry_cap_ / 2;
  for (const auto& [used, id] : order) {
    if (cached_entries_ <= target) break;
    drop_row(id, row_evictions_);
  }
}

void ConflictIndex::set_row_cache_entry_cap(std::size_t cap) {
  row_cache_entry_cap_ = cap;
  if (cap == 0) {
    flush_rows(row_evictions_);
  } else {
    maybe_evict();
  }
}

ConflictIndexStats ConflictIndex::stats() const noexcept {
  ConflictIndexStats s;
  s.adds = adds_;
  s.removes = removes_;
  s.updates = updates_;
  s.reclasses = reclasses_;
  s.maintain_ms = maintain_ms_;
  s.rows_queried = rows_queried_.load();
  s.dedupe_hits = dedupe_hits_.load();
  s.cells_pruned = cells_pruned_.load();
  s.row_cache_hits = row_hits_.load();
  s.row_cache_misses = row_misses_.load();
  s.row_cache_patches = row_patches_;
  s.row_cache_invalidations = row_invalidations_.load();
  s.row_cache_evictions = row_evictions_.load();
  s.rows_cached = rows_live_;
  return s;
}

void ConflictIndex::add(geom::LinkId id, const geom::Point& sender,
                        const geom::Point& receiver, double length) {
  const auto start = util::Clock::now();
  if (id < 0) {
    throw std::invalid_argument("ConflictIndex::add: negative link id");
  }
  if (!(length > 0.0)) {
    throw std::invalid_argument("ConflictIndex::add: length must be positive");
  }
  if (contains(id)) {
    throw std::invalid_argument("ConflictIndex::add: id already present");
  }
  if (entries_.size() <= static_cast<std::size_t>(id)) {
    entries_.resize(static_cast<std::size_t>(id) + 1);
  }
  if (!have_origin_) {
    origin_x_ = sender.x;
    origin_y_ = sender.y;
    have_origin_ = true;
  }
  auto& entry = entries_[static_cast<std::size_t>(id)];
  entry = Entry{sender, receiver, length, class_of(length), true};
  grid_insert(entry, id);
  ++live_;
  // Diff-maintain the row cache: the new link belongs in exactly the rows
  // of its own conflict partners (conflict(y, z) depends only on y and z's
  // geometry, so no other row can change). Computing the row once serves
  // both the symmetric patches and the link's own materialized row. Gated
  // on the cache holding anything at all so bulk re-seeds (clear() + adds,
  // with zero rows standing) stay pure grid inserts.
  if (rows_live_ > 0) {
    auto fresh = compute_row(id);
    patch_insert(fresh, id);
    store_row(id, std::move(fresh));
    maybe_evict();
  }
  ++adds_;
  maintain_ms_ += util::ms_since(start);
}

void ConflictIndex::remove(geom::LinkId id) {
  const auto start = util::Clock::now();
  auto& entry = checked(id);
  if (rows_live_ > 0) {
    // Erase the link from every cached row containing it. Its own cached
    // row names those rows exactly; without one, a grid probe over the
    // current geometry bounds them (a superset — patch_erase no-ops on rows
    // not holding the id).
    const auto slot = static_cast<std::size_t>(id);
    if (slot < rows_.size() && rows_[slot].cached) {
      auto& row = rows_[slot];
      std::vector<geom::LinkId> targets = std::move(row.ids);
      row.ids.clear();
      row.cached = false;
      cached_entries_ -= targets.size();
      --rows_live_;
      row_invalidations_.add(1);
      patch_erase(targets, id);
    } else {
      collect_candidates(entry.sender, entry.receiver, entry.length,
                         /*prune=*/false, row_scratch_);
      patch_erase(row_scratch_, id);
    }
  }
  grid_erase(entry, id);
  entry.live = false;
  --live_;
  ++removes_;
  maintain_ms_ += util::ms_since(start);
}

void ConflictIndex::update(geom::LinkId id, const geom::Point& sender,
                           const geom::Point& receiver, double length) {
  const auto start = util::Clock::now();
  if (!(length > 0.0)) {
    throw std::invalid_argument(
        "ConflictIndex::update: length must be positive");
  }
  auto& entry = checked(id);
  if (entry.sender == sender && entry.receiver == receiver &&
      entry.length == length) {
    // Bit-identical geometry (the store's set_length + touch refresh double
    // fires here): no cell and no row can change.
    ++updates_;
    maintain_ms_ += util::ms_since(start);
    return;
  }
  const bool rows_active = rows_live_ > 0;
  if (rows_active) {
    // Erase phase against the OLD geometry (see remove()).
    const auto slot = static_cast<std::size_t>(id);
    if (slot < rows_.size() && rows_[slot].cached) {
      auto& row = rows_[slot];
      std::vector<geom::LinkId> targets = std::move(row.ids);
      row.ids.clear();
      row.cached = false;
      cached_entries_ -= targets.size();
      --rows_live_;
      row_invalidations_.add(1);
      patch_erase(targets, id);
    } else {
      collect_candidates(entry.sender, entry.receiver, entry.length,
                         /*prune=*/false, row_scratch_);
      patch_erase(row_scratch_, id);
    }
  }
  const int cls = class_of(length);
  const bool moved =
      entry.sender != sender || entry.receiver != receiver;
  if (cls == entry.cls) {
    // Lazy re-classing: the length stayed inside its power-of-two class, so
    // only the endpoint cells can need refreshing.
    if (moved) {
      auto& grid = classes_.at(entry.cls);
      grid.erase(entry.sender, id);
      grid.erase(entry.receiver, id);
      grid.insert(sender, id);
      grid.insert(receiver, id);
    }
    entry.sender = sender;
    entry.receiver = receiver;
    entry.length = length;
  } else {
    grid_erase(entry, id);
    entry = Entry{sender, receiver, length, cls, true};
    grid_insert(entry, id);
    ++reclasses_;
  }
  if (rows_active) {
    // Insert phase against the NEW geometry: one probe serves both the
    // symmetric neighbor patches and the link's own rematerialized row.
    auto fresh = compute_row(id);
    patch_insert(fresh, id);
    store_row(id, std::move(fresh));
    maybe_evict();
  }
  ++updates_;
  maintain_ms_ += util::ms_since(start);
}

void ConflictIndex::clear() {
  entries_.clear();
  classes_.clear();
  flush_rows(row_invalidations_);
  live_ = 0;
}

std::vector<std::vector<std::int32_t>> ConflictIndex::neighbors(
    const geom::LinkView& links, const ConflictSpec& spec,
    std::span<const std::size_t> queries) const {
  spec.validate();
  if (links.size() != live_) {
    throw std::logic_error(
        "ConflictIndex::neighbors: view holds " +
        std::to_string(links.size()) + " links, index holds " +
        std::to_string(live_) + " — not a snapshot of the mirrored store");
  }
  std::vector<std::vector<std::int32_t>> result(queries.size());
  if (live_ < 2) return result;

  // The cache is keyed to one spec at a time: a query under a different
  // spec flushes every materialized row. cached_spec_ is also what the
  // mutation-path maintenance and compute_row evaluate against, so it must
  // be synced before any row work below.
  if (!cache_enabled_ || !(spec == cached_spec_)) {
    flush_rows(row_invalidations_);
    cached_spec_ = spec;
    cache_enabled_ = true;
  }

  // Dense index of a stable id: the snapshot's dense order is increasing id.
  const auto link_ids = links.ids();
  const auto dense_of = [&](geom::LinkId id) {
    const auto it = std::lower_bound(link_ids.begin(), link_ids.end(), id);
    if (it == link_ids.end() || *it != id) {
      throw std::logic_error(
          "ConflictIndex::neighbors: indexed link absent from the view");
    }
    return static_cast<std::int32_t>(it - link_ids.begin());
  };

  rows_queried_.add(static_cast<std::uint64_t>(queries.size()));
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  const bool may_cache = row_cache_entry_cap_ > 0;
  std::vector<geom::LinkId> fresh;
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const geom::LinkId id = links.id_of(queries[k]);
    if (!contains(id)) {
      throw std::logic_error(
          "ConflictIndex::neighbors: view link absent from the index — not "
          "a snapshot of the mirrored store");
    }
    const auto slot = static_cast<std::size_t>(id);
    const std::vector<geom::LinkId>* ids = nullptr;
    if (slot < rows_.size() && rows_[slot].cached) {
      ++hits;
      rows_[slot].last_used = ++use_serial_;
      ids = &rows_[slot].ids;
    } else {
      ++misses;
      fresh = compute_row(id);
      if (may_cache) {
        store_row(id, std::move(fresh));
        ids = &rows_[slot].ids;
      } else {
        ids = &fresh;
      }
    }
    // Rows are sorted in id-space and dense order is increasing id, so the
    // translated row comes out sorted — byte-identical to the one-shot
    // builders' dense rows.
    auto& out = result[k];
    out.reserve(ids->size());
    for (const geom::LinkId nid : *ids) out.push_back(dense_of(nid));
  }
  if (hits != 0) row_hits_.add(hits);
  if (misses != 0) row_misses_.add(misses);
  maybe_evict();
  return result;
}

Graph ConflictIndex::build_graph(const geom::LinkView& links,
                                 const ConflictSpec& spec) const {
  Graph graph(links.size());
  if (links.size() < 2) {
    graph.finalize();
    return graph;
  }
  std::vector<std::size_t> all(links.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto rows = neighbors(links, spec, all);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const std::int32_t j : rows[i]) {
      // Every edge surfaces from both endpoints; keep the i < j sighting.
      if (static_cast<std::size_t>(j) > i) {
        graph.add_edge(i, static_cast<std::size_t>(j));
      }
    }
  }
  graph.finalize();
  return graph;
}

}  // namespace wagg::conflict
