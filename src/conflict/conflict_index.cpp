#include "conflict/conflict_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "util/clock.h"

namespace wagg::conflict {

namespace {

/// Absolute length class: c such that length lies in [2^c, 2^(c+1)).
[[nodiscard]] int class_of(double length) {
  return static_cast<int>(std::floor(std::log2(length)));
}

}  // namespace

ConflictIndex::Entry& ConflictIndex::checked(geom::LinkId id) {
  if (!contains(id)) {
    throw std::invalid_argument("ConflictIndex: unknown link id " +
                                std::to_string(id));
  }
  return entries_[static_cast<std::size_t>(id)];
}

void ConflictIndex::grid_insert(const Entry& entry, geom::LinkId id) {
  auto [it, inserted] = classes_.try_emplace(
      entry.cls, std::exp2(static_cast<double>(entry.cls)), origin_x_,
      origin_y_);
  it->second.insert(entry.sender, id);
  it->second.insert(entry.receiver, id);
}

void ConflictIndex::grid_erase(const Entry& entry, geom::LinkId id) {
  const auto it = classes_.find(entry.cls);
  if (it == classes_.end()) {
    throw std::logic_error("ConflictIndex: class grid missing for live link");
  }
  it->second.erase(entry.sender, id);
  it->second.erase(entry.receiver, id);
  if (it->second.empty()) classes_.erase(it);
}

void ConflictIndex::add(geom::LinkId id, const geom::Point& sender,
                        const geom::Point& receiver, double length) {
  const auto start = util::Clock::now();
  if (id < 0) {
    throw std::invalid_argument("ConflictIndex::add: negative link id");
  }
  if (!(length > 0.0)) {
    throw std::invalid_argument("ConflictIndex::add: length must be positive");
  }
  if (contains(id)) {
    throw std::invalid_argument("ConflictIndex::add: id already present");
  }
  if (entries_.size() <= static_cast<std::size_t>(id)) {
    entries_.resize(static_cast<std::size_t>(id) + 1);
  }
  if (!have_origin_) {
    origin_x_ = sender.x;
    origin_y_ = sender.y;
    have_origin_ = true;
  }
  auto& entry = entries_[static_cast<std::size_t>(id)];
  entry = Entry{sender, receiver, length, class_of(length), true};
  grid_insert(entry, id);
  ++live_;
  ++stats_.adds;
  stats_.maintain_ms += util::ms_since(start);
}

void ConflictIndex::remove(geom::LinkId id) {
  const auto start = util::Clock::now();
  auto& entry = checked(id);
  grid_erase(entry, id);
  entry.live = false;
  --live_;
  ++stats_.removes;
  stats_.maintain_ms += util::ms_since(start);
}

void ConflictIndex::update(geom::LinkId id, const geom::Point& sender,
                          const geom::Point& receiver, double length) {
  const auto start = util::Clock::now();
  if (!(length > 0.0)) {
    throw std::invalid_argument(
        "ConflictIndex::update: length must be positive");
  }
  auto& entry = checked(id);
  const int cls = class_of(length);
  const bool moved =
      entry.sender != sender || entry.receiver != receiver;
  if (cls == entry.cls) {
    // Lazy re-classing: the length stayed inside its power-of-two class, so
    // only the endpoint cells can need refreshing.
    if (moved) {
      auto& grid = classes_.at(entry.cls);
      grid.erase(entry.sender, id);
      grid.erase(entry.receiver, id);
      grid.insert(sender, id);
      grid.insert(receiver, id);
    }
    entry.sender = sender;
    entry.receiver = receiver;
    entry.length = length;
  } else {
    grid_erase(entry, id);
    entry = Entry{sender, receiver, length, cls, true};
    grid_insert(entry, id);
    ++stats_.reclasses;
  }
  ++stats_.updates;
  stats_.maintain_ms += util::ms_since(start);
}

void ConflictIndex::clear() {
  entries_.clear();
  classes_.clear();
  live_ = 0;
}

std::vector<std::vector<std::int32_t>> ConflictIndex::neighbors(
    const geom::LinkView& links, const ConflictSpec& spec,
    std::span<const std::size_t> queries) const {
  spec.validate();
  if (links.size() != live_) {
    throw std::logic_error(
        "ConflictIndex::neighbors: view holds " +
        std::to_string(links.size()) + " links, index holds " +
        std::to_string(live_) + " — not a snapshot of the mirrored store");
  }
  std::vector<std::vector<std::int32_t>> result(queries.size());
  if (live_ < 2) return result;

  // Dense index of a stable id: the snapshot's dense order is increasing id.
  const auto link_ids = links.ids();
  const auto dense_of = [&](geom::LinkId id) {
    const auto it = std::lower_bound(link_ids.begin(), link_ids.end(), id);
    if (it == link_ids.end() || *it != id) {
      throw std::logic_error(
          "ConflictIndex::neighbors: indexed link absent from the view");
    }
    return static_cast<std::int32_t>(it - link_ids.begin());
  };

  if (stamp_.size() < entries_.size()) stamp_.resize(entries_.size(), 0);
  std::vector<geom::LinkId> candidates;
  stats_.rows_queried += queries.size();
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const std::size_t q = queries[k];
    const double lq = links.length(q);
    const geom::Point& qs = links.sender_pos(q);
    const geom::Point& qr = links.receiver_pos(q);
    const std::uint64_t serial = ++stamp_serial_;
    auto& row = result[k];
    for (const auto& [cs, grid] : classes_) {
      // Two-sided bound, identical to conflict_neighbors_bucketed but with
      // ABSOLUTE class bounds: partner j in class cs has
      // class_lo <= l_j < class_hi, so conflict requires
      //   d(q, j) <= lmin_pair * f(lmax_pair / lmin_pair)
      // with lmin_pair <= min(lq, class_hi) and the ratio at most x_max;
      // f non-decreasing makes the radius an over-approximation of every
      // pair. Guard formula matches the one-shot builders exactly so
      // threshold ties agree across all three.
      const double class_lo = std::exp2(static_cast<double>(cs));
      const double class_hi = 2.0 * class_lo;
      const double x_max = std::max({1.0, lq / class_lo, class_hi / lq});
      const double radius = std::min(lq, class_hi) * spec.f(x_max) +
                            1e-12 * std::max(lq, class_hi);
      // The exact-distance prune needs its own RELATIVE slack: for specs
      // with large f the absolute 1e-12 * max(...) term can fall below one
      // ulp of the radius product, and a threshold pair the exact predicate
      // accepts (its comparison carries ~ulp rounding of its own) would be
      // pruned. The cell-granularity collect is immune — it always has a
      // full cell of slack — so only the squared threshold is inflated.
      const double prune_radius = radius * (1.0 + 4e-12);
      const double radius2 = prune_radius * prune_radius;
      candidates.clear();
      grid.collect(qs, qr, radius, candidates);
      for (const geom::LinkId id : candidates) {
        const auto slot = static_cast<std::size_t>(id);
        if (stamp_[slot] == serial) {  // seen via the other endpoint
          ++stats_.dedupe_hits;
          continue;
        }
        stamp_[slot] = serial;
        // Cheap squared-distance prune before the exact predicate: the
        // radius over-approximates every conflict distance for this class,
        // so anything farther cannot conflict. Overflowing products land on
        // +inf and the comparison keeps the pair (the exact predicate is
        // overflow-safe), never drops it.
        const Entry& entry = entries_[slot];
        const double d2 =
            std::min(std::min(geom::squared_distance(qs, entry.sender),
                              geom::squared_distance(qs, entry.receiver)),
                     std::min(geom::squared_distance(qr, entry.sender),
                              geom::squared_distance(qr, entry.receiver)));
        if (d2 > radius2) {
          ++stats_.cells_pruned;
          continue;
        }
        const auto j = static_cast<std::size_t>(dense_of(id));
        if (spec.conflicting(links, q, j)) {
          row.push_back(static_cast<std::int32_t>(j));
        }
      }
    }
    // Match the one-shot query's row order (sorted dense indices).
    std::sort(row.begin(), row.end());
  }
  return result;
}

Graph ConflictIndex::build_graph(const geom::LinkView& links,
                                 const ConflictSpec& spec) const {
  Graph graph(links.size());
  if (links.size() < 2) {
    graph.finalize();
    return graph;
  }
  std::vector<std::size_t> all(links.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto rows = neighbors(links, spec, all);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const std::int32_t j : rows[i]) {
      // Every edge surfaces from both endpoints; keep the i < j sighting.
      if (static_cast<std::size_t>(j) > i) {
        graph.add_edge(i, static_cast<std::size_t>(j));
      }
    }
  }
  graph.finalize();
  return graph;
}

}  // namespace wagg::conflict
