#ifndef WAGG_CONFLICT_GRAPH_H
#define WAGG_CONFLICT_GRAPH_H

#include <cstdint>
#include <span>
#include <vector>

namespace wagg::conflict {

/// Simple undirected graph with adjacency lists; vertices are link indices.
/// Edges may be added in any order; finalize() sorts and deduplicates the
/// adjacency lists (idempotent; called automatically by accessors that
/// require sorted order).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_vertices);

  void add_edge(std::size_t u, std::size_t v);
  void finalize();

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] bool has_edge(std::size_t u, std::size_t v) const;
  [[nodiscard]] std::span<const std::int32_t> neighbors(std::size_t v) const;
  [[nodiscard]] std::size_t degree(std::size_t v) const;
  [[nodiscard]] std::size_t max_degree() const;

  /// True iff no two vertices of `set` are adjacent.
  [[nodiscard]] bool is_independent(std::span<const std::size_t> set) const;

 private:
  std::vector<std::vector<std::int32_t>> adjacency_;
  std::size_t num_edges_ = 0;
  bool finalized_ = true;
};

}  // namespace wagg::conflict

#endif  // WAGG_CONFLICT_GRAPH_H
