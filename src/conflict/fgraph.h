#ifndef WAGG_CONFLICT_FGRAPH_H
#define WAGG_CONFLICT_FGRAPH_H

#include <string>

#include "conflict/graph.h"
#include "geom/linkset.h"

namespace wagg::conflict {

/// The conflict-graph family G_f of [12, 13] (paper, Appendix A): links i, j
/// are f-independent iff d(i, j) / lmin > f(lmax / lmin) with
/// lmin = min(l_i, l_j), lmax = max(l_i, l_j), and f positive, non-decreasing
/// and sublinear. Three instantiations are used by the paper:
///
///   f(x) = gamma                          G_gamma    ("G_1" when gamma = 1)
///   f(x) = gamma * x^delta                G^delta_gamma   (oblivious power)
///   f(x) = gamma * max(1, log^(2/(alpha-2)) x)   G_(gamma log) (arbitrary power)
struct ConflictSpec {
  enum class Kind { kConstant, kPowerLaw, kLogarithmic };

  Kind kind = Kind::kConstant;
  double gamma = 1.0;
  double delta = 0.5;  ///< exponent for kPowerLaw, in (0, 1)
  double alpha = 3.0;  ///< path-loss exponent for kLogarithmic

  /// The threshold function f(x); domain x >= 1.
  [[nodiscard]] double f(double x) const;

  /// Throws std::invalid_argument unless the parameters are in range for
  /// `kind` (positive gamma, delta in (0, 1), alpha > 2).
  void validate() const;

  /// True iff links i and j of `links` conflict under this spec.
  [[nodiscard]] bool conflicting(const geom::LinkView& links, std::size_t i,
                                 std::size_t j) const;

  [[nodiscard]] std::string name() const;

  /// Field-wise equality (spec-keyed caches use it; comparing fields the
  /// kind ignores is conservative — at worst a needless flush).
  friend bool operator==(const ConflictSpec&, const ConflictSpec&) = default;

  static ConflictSpec constant(double gamma);
  static ConflictSpec power_law(double gamma, double delta);
  static ConflictSpec logarithmic(double gamma, double alpha);
};

/// Builds G_f(L) by checking all O(n^2) pairs.
[[nodiscard]] Graph build_conflict_graph(const geom::LinkView& links,
                                         const ConflictSpec& spec);

/// Builds the same graph using per-length-class bucket grids: links are
/// partitioned into powers-of-two length classes, each class indexes its
/// endpoints in a uniform grid, and each link queries only the grid cells
/// that could contain a conflicting partner. Equal output to
/// build_conflict_graph (property-tested); much faster on large low-diversity
/// instances, and automatically no worse than naive on tiny ones.
[[nodiscard]] Graph build_conflict_graph_bucketed(const geom::LinkView& links,
                                                  const ConflictSpec& spec);

/// Conflict adjacency for a SUBSET of links only: result[k] holds the
/// (sorted, deduplicated) links conflicting with queries[k], computed
/// against the whole link set through the same per-class bucket grids as
/// build_conflict_graph_bucketed — equal to the corresponding rows of the
/// full graph (property-tested). Cost is one O(n) index build plus
/// output-sensitive queries, so callers that only need a few rows (the
/// incremental planner's dirty set) avoid the full O(n^2 worst) rebuild.
[[nodiscard]] std::vector<std::vector<std::int32_t>>
conflict_neighbors_bucketed(const geom::LinkView& links,
                            const ConflictSpec& spec,
                            std::span<const std::size_t> queries);

}  // namespace wagg::conflict

#endif  // WAGG_CONFLICT_FGRAPH_H
