#include "core/baseline.h"

#include <stdexcept>

namespace wagg::core {

LevelScheduleResult level_schedule(const mst::PairingTree& tree,
                                   const PlannerConfig& config) {
  config.validate();
  const geom::LinkSet& links = tree.tree.links;
  if (tree.level_of_link.size() != links.size()) {
    throw std::invalid_argument("level_schedule: malformed pairing tree");
  }
  LevelScheduleResult result;
  result.num_levels = tree.num_levels;
  result.verified = true;

  // Partition link indices by level, then schedule each level's sub-linkset
  // with the full pipeline (conflict graph + coloring + repair).
  std::vector<std::vector<std::size_t>> by_level(
      static_cast<std::size_t>(tree.num_levels));
  for (std::size_t i = 0; i < links.size(); ++i) {
    by_level.at(static_cast<std::size_t>(tree.level_of_link[i])).push_back(i);
  }
  const auto oracle = oracle_for_mode(links, config);
  for (const auto& level_links : by_level) {
    if (level_links.empty()) {
      result.slots_per_level.push_back(0);
      continue;
    }
    // Greedy pack the level's links against the exact oracle (levels are
    // small enough that first-fit with exact checks is affordable, and it
    // needs no sub-linkset index remapping).
    std::vector<std::vector<std::size_t>> slots;
    std::vector<std::size_t> trial;
    for (std::size_t link : level_links) {
      bool placed = false;
      for (auto& slot : slots) {
        trial = slot;
        trial.push_back(link);
        if (oracle(trial)) {
          slot.push_back(link);
          placed = true;
          break;
        }
      }
      if (!placed) {
        trial = {link};
        if (!oracle(trial)) {
          result.verified = false;
        }
        slots.push_back(std::move(trial));
      }
    }
    result.slots_per_level.push_back(slots.size());
    for (auto& slot : slots) result.schedule.slots.push_back(std::move(slot));
  }
  return result;
}

}  // namespace wagg::core
