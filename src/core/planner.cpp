#include "core/planner.h"

#include <algorithm>
#include <stdexcept>

#include "coloring/coloring.h"
#include "conflict/conflict_index.h"
#include "schedule/repair.h"
#include "util/clock.h"

namespace wagg::core {

using util::Clock;
using util::ms_since;

std::string to_string(PowerMode mode) {
  switch (mode) {
    case PowerMode::kUniform:
      return "uniform";
    case PowerMode::kLinear:
      return "linear";
    case PowerMode::kOblivious:
      return "oblivious";
    case PowerMode::kGlobal:
      return "global";
  }
  return "?";
}

void PlannerConfig::validate() const {
  sinr.validate();
  if (!(gamma > 0.0)) {
    throw std::invalid_argument("PlannerConfig: gamma must be positive");
  }
  if (power_mode == PowerMode::kOblivious) {
    if (!(tau > 0.0 && tau < 1.0)) {
      throw std::invalid_argument(
          "PlannerConfig: oblivious mode requires tau in (0, 1)");
    }
    if (!(delta > 0.0 && delta < 1.0)) {
      throw std::invalid_argument("PlannerConfig: delta must lie in (0, 1)");
    }
    if (delta <= std::max(tau, 1.0 - tau)) {
      throw std::invalid_argument(
          "PlannerConfig: delta must exceed max(tau, 1 - tau) for the "
          "conflict graph to imply P_tau feasibility");
    }
  }
}

conflict::ConflictSpec spec_for_mode(const PlannerConfig& config) {
  switch (config.power_mode) {
    case PowerMode::kGlobal:
      return conflict::ConflictSpec::logarithmic(config.gamma,
                                                 config.sinr.alpha);
    case PowerMode::kOblivious:
      return conflict::ConflictSpec::power_law(config.gamma, config.delta);
    case PowerMode::kUniform:
    case PowerMode::kLinear:
      return conflict::ConflictSpec::constant(config.gamma);
  }
  throw std::logic_error("spec_for_mode: unknown power mode");
}

sinr::PowerAssignment power_for_mode(const geom::LinkView& links,
                                     const PlannerConfig& config) {
  switch (config.power_mode) {
    case PowerMode::kUniform:
      return sinr::uniform_power(links, config.sinr);
    case PowerMode::kLinear:
      return sinr::linear_power(links, config.sinr);
    case PowerMode::kOblivious:
      return sinr::oblivious_power(links, config.tau, config.sinr);
    case PowerMode::kGlobal:
      // Placeholder identity; real powers are per-slot Perron vectors.
      return sinr::PowerAssignment(std::vector<double>(links.size(), 0.0),
                                   "global(per-slot)");
  }
  throw std::logic_error("power_for_mode: unknown power mode");
}

schedule::FeasibilityOracle oracle_for_mode(const geom::LinkView& links,
                                            const PlannerConfig& config) {
  if (config.power_mode == PowerMode::kGlobal) {
    return schedule::power_control_oracle(links, config.sinr);
  }
  return schedule::fixed_power_oracle(links, config.sinr,
                                      power_for_mode(links, config));
}

LinkScheduleResult schedule_links(const geom::LinkView& links,
                                  const PlannerConfig& config,
                                  StageTimings* timings, const WarmStart* warm,
                                  const conflict::ConflictIndex* conflict_index) {
  config.validate();
  if (warm && warm->seed_colors.size() != links.size()) {
    throw std::invalid_argument(
        "schedule_links: warm-start seed size does not match link count");
  }
  LinkScheduleResult result;
  result.spec = spec_for_mode(config);
  result.power = power_for_mode(links, config);

  auto stage_start = Clock::now();
  const conflict::Graph graph =
      conflict_index ? conflict_index->build_graph(links, result.spec)
      : config.bucketed_conflict
          ? conflict::build_conflict_graph_bucketed(links, result.spec)
          : conflict::build_conflict_graph(links, result.spec);
  if (timings) timings->conflict_ms = ms_since(stage_start);

  stage_start = Clock::now();
  const auto order = config.order == ColoringOrder::kDecreasingLength
                         ? links.by_decreasing_length()
                         : links.by_increasing_length();
  const coloring::Coloring colors =
      warm ? coloring::greedy_recolor(graph, order, warm->seed_colors)
           : coloring::greedy_color(graph, order);
  result.schedule = schedule::from_coloring(colors);
  if (warm) {
    // A seeded coloring may leave gaps (color classes that lost every
    // member); empty slots would inflate the schedule length.
    std::erase_if(result.schedule.slots,
                  [](const std::vector<std::size_t>& s) { return s.empty(); });
  }
  result.colors_before_repair = result.schedule.length();
  if (timings) timings->coloring_ms = ms_since(stage_start);

  const auto oracle = oracle_for_mode(links, config);
  if (config.repair) {
    stage_start = Clock::now();
    // Fixed-power modes use the incremental packer (same output contract,
    // orders of magnitude faster on large slots).
    auto repaired =
        config.power_mode == PowerMode::kGlobal
            ? schedule::repair_schedule(links, result.schedule, oracle)
            : schedule::repair_schedule_fixed_power(
                  links, result.schedule, config.sinr, result.power);
    result.schedule = std::move(repaired.schedule);
    result.slots_split = repaired.slots_split;
    if (timings) timings->repair_ms = ms_since(stage_start);
  }
  stage_start = Clock::now();
  result.verification = schedule::verify_schedule(links, result.schedule,
                                                  oracle);
  if (timings) timings->verify_ms = ms_since(stage_start);
  return result;
}

PlanResult plan_aggregation(const geom::Pointset& points,
                            const PlannerConfig& config,
                            StageTimings* timings) {
  config.validate();
  if (points.size() < 2) {
    throw std::invalid_argument("plan_aggregation: need >= 2 points");
  }
  PlanResult result;
  const auto tree_start = Clock::now();
  switch (config.tree) {
    case TreeKind::kMst:
      result.tree = mst::mst_tree(points, config.sink);
      break;
    case TreeKind::kPairing:
      result.tree = mst::pairing_tree(points, config.sink).tree;
      break;
  }
  if (timings) timings->tree_ms = ms_since(tree_start);
  result.scheduling = schedule_links(result.tree.links, config, timings);

  if (config.power_mode == PowerMode::kGlobal) {
    const auto power_start = Clock::now();
    // Materialize the per-slot global power vectors (the actual output of
    // the power-control algorithm) and stitch a per-link assignment from
    // each link's home slot for reporting.
    std::vector<double> stitched(result.tree.links.size(), 0.0);
    result.slot_powers.reserve(result.scheduling.schedule.length());
    for (const auto& slot : result.scheduling.schedule.slots) {
      const auto pc = sinr::power_control_feasible(result.tree.links, slot,
                                                   config.sinr);
      sinr::PowerAssignment slot_power =
          pc.feasible ? sinr::embed_slot_power(result.tree.links, slot, pc)
                      : sinr::PowerAssignment(
                            std::vector<double>(result.tree.links.size(), 0.0),
                            "infeasible-slot");
      for (std::size_t a = 0; a < slot.size() && pc.feasible; ++a) {
        stitched[slot[a]] = pc.log2_power[a];
      }
      result.slot_powers.push_back(std::move(slot_power));
    }
    result.scheduling.power =
        sinr::PowerAssignment(std::move(stitched), "global(stitched)");
    if (timings) timings->power_ms = ms_since(power_start);
  }
  return result;
}

}  // namespace wagg::core
