#include "core/kconnect.h"

#include <stdexcept>

#include "mst/mst.h"
#include "sinr/interference.h"

namespace wagg::core {

KConnectedPlan plan_k_connected(const geom::Pointset& points, int k,
                                const PlannerConfig& config) {
  config.validate();
  if (points.size() < 2) {
    throw std::invalid_argument("plan_k_connected: need >= 2 points");
  }
  const auto edges = mst::k_fold_mst(points, k);
  std::vector<geom::Link> links;
  links.reserve(edges.size());
  for (const auto& e : edges) links.push_back(geom::Link{e.v, e.u});

  KConnectedPlan plan;
  plan.k = k;
  plan.links = geom::LinkSet(points, std::move(links));
  plan.scheduling = schedule_links(plan.links, config);
  plan.lemma1_statistic =
      sinr::lemma1_statistic(plan.links, config.sinr.alpha);
  return plan;
}

}  // namespace wagg::core
