#ifndef WAGG_CORE_KCONNECT_H
#define WAGG_CORE_KCONNECT_H

#include "core/planner.h"
#include "geom/linkset.h"
#include "schedule/schedule.h"

namespace wagg::core {

/// The paper's Remark 2: the scheduling machinery extends from the MST to
/// k-edge-connected spanning structures (robust aggregation that survives
/// k-1 link failures), with the Lemma 1 constant growing polynomially in k.
/// We build the structure as the union of k successive MSTs over the
/// remaining complete graph ([11]'s construction), orient each edge from its
/// later-discovered endpoint, and schedule with the configured power mode.
struct KConnectedPlan {
  int k = 1;
  geom::LinkSet links;
  LinkScheduleResult scheduling;
  /// max_i I(i, L_i^+): the Remark 2 statistic, expected to grow with k but
  /// stay bounded for fixed k.
  double lemma1_statistic = 0.0;

  [[nodiscard]] double rate() const { return scheduling.rate(); }
  [[nodiscard]] bool verified() const { return scheduling.verification.ok(); }
};

/// Throws std::invalid_argument for k < 1 or fewer than 2 points.
[[nodiscard]] KConnectedPlan plan_k_connected(const geom::Pointset& points,
                                              int k,
                                              const PlannerConfig& config);

}  // namespace wagg::core

#endif  // WAGG_CORE_KCONNECT_H
