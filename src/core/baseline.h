#ifndef WAGG_CORE_BASELINE_H
#define WAGG_CORE_BASELINE_H

#include "core/planner.h"
#include "mst/tree.h"
#include "schedule/schedule.h"

namespace wagg::core {

/// The classic level-by-level scheduling of the matching-hierarchy tree
/// ([11]-style, the Theta(1/log n) rate / O(log n) latency baseline the
/// paper improves on): each matching level is scheduled independently with
/// the configured power mode and the per-level schedules are concatenated.
/// The resulting length is sum over levels of per-level colors — Omega(log n)
/// even when every level colors in O(1) slots.
struct LevelScheduleResult {
  schedule::Schedule schedule;
  int num_levels = 0;
  /// Slots used by each level after repair.
  std::vector<std::size_t> slots_per_level;
  bool verified = false;
};

[[nodiscard]] LevelScheduleResult level_schedule(const mst::PairingTree& tree,
                                                 const PlannerConfig& config);

}  // namespace wagg::core

#endif  // WAGG_CORE_BASELINE_H
