#ifndef WAGG_CORE_PLANNER_H
#define WAGG_CORE_PLANNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "conflict/fgraph.h"
#include "geom/linkset.h"
#include "geom/point.h"
#include "mst/tree.h"
#include "schedule/repair.h"
#include "schedule/schedule.h"
#include "schedule/verify.h"
#include "sinr/model.h"
#include "sinr/power.h"

namespace wagg::conflict {
class ConflictIndex;
}  // namespace wagg::conflict

namespace wagg::core {

/// Power-control regime (Sec 2 "Power Assignments").
enum class PowerMode {
  kUniform,    ///< P_0: no power control
  kLinear,     ///< P_1: power ~ l^alpha
  kOblivious,  ///< P_tau, tau in (0,1): local (length-only) power control
  kGlobal,     ///< arbitrary power control (the paper's main setting)
};

[[nodiscard]] std::string to_string(PowerMode mode);

/// Which spanning structure to aggregate over.
enum class TreeKind {
  kMst,      ///< Euclidean MST (the paper's choice)
  kPairing,  ///< matching-hierarchy baseline (Theta(1/log n) rate, [11])
};

/// Order in which the greedy coloring processes links. The paper's appendix
/// (and the inductive-independence argument) use non-increasing length; the
/// prose of Sec 3 says non-decreasing. Both are provided; E3 ablates them.
enum class ColoringOrder { kDecreasingLength, kIncreasingLength };

struct PlannerConfig {
  sinr::SinrParams sinr;
  PowerMode power_mode = PowerMode::kGlobal;
  TreeKind tree = TreeKind::kMst;
  ColoringOrder order = ColoringOrder::kDecreasingLength;
  /// Oblivious power exponent tau (used by kOblivious).
  double tau = 0.5;
  /// Conflict-graph threshold constant gamma.
  double gamma = 2.0;
  /// Exponent of the power-law conflict graph used for kOblivious; must
  /// exceed max(tau, 1-tau) for pairwise affectance to decay.
  double delta = 0.75;
  /// Split any slot failing the exact SINR check (strongly recommended; the
  /// theory's "large enough" constants are not exact for any finite gamma).
  bool repair = true;
  /// Use the bucket-grid conflict-graph builder.
  bool bucketed_conflict = true;
  /// Node index that collects the aggregate.
  std::int32_t sink = 0;

  void validate() const;
};

/// Wall-clock breakdown of one planning run, in milliseconds. Filled by
/// plan_aggregation / schedule_links when the caller passes a non-null
/// pointer; stages a run does not execute (e.g. repair when disabled, power
/// for fixed-power modes) stay 0.
struct StageTimings {
  double tree_ms = 0.0;      ///< spanning-structure construction
  double conflict_ms = 0.0;  ///< conflict-graph build
  double coloring_ms = 0.0;  ///< greedy coloring
  double repair_ms = 0.0;    ///< exact-SINR slot repair
  double verify_ms = 0.0;    ///< full-schedule verification
  double power_ms = 0.0;     ///< per-slot global power materialization

  [[nodiscard]] double total_ms() const noexcept {
    return tree_ms + conflict_ms + coloring_ms + repair_ms + verify_ms +
           power_ms;
  }
};

/// Scheduling outcome for a bare link set (no tree semantics attached).
struct LinkScheduleResult {
  conflict::ConflictSpec spec;
  schedule::Schedule schedule;
  schedule::VerificationReport verification;
  /// Colors used by the conflict-graph coloring before repair.
  std::size_t colors_before_repair = 0;
  /// Slots the repair pass had to split (0 when repair disabled or clean).
  std::size_t slots_split = 0;
  /// The fixed power assignment (uniform/linear/oblivious); for kGlobal this
  /// holds per-link powers stitched from each link's home slot.
  sinr::PowerAssignment power;

  [[nodiscard]] double rate() const { return schedule.coloring_rate(); }
};

/// Chooses the paper's conflict graph for the given power mode:
/// G_(gamma log) for kGlobal, G^delta_gamma for kOblivious, G_gamma
/// otherwise (uniform/linear have no sublinear guarantee; the constant graph
/// plus repair yields a correct — possibly long — schedule).
[[nodiscard]] conflict::ConflictSpec spec_for_mode(const PlannerConfig& config);

/// The feasibility oracle matching the configured power mode.
[[nodiscard]] schedule::FeasibilityOracle oracle_for_mode(
    const geom::LinkView& links, const PlannerConfig& config);

/// The fixed power assignment for the configured mode (identity powers for
/// kGlobal, whose per-slot powers are computed later).
[[nodiscard]] sinr::PowerAssignment power_for_mode(const geom::LinkView& links,
                                                   const PlannerConfig& config);

/// Warm-start seed for schedule_links. Links with seed_colors[i] >= 0 keep
/// that color (the caller asserts the seed is proper on the seeded
/// subgraph); links with -1 are colored greedily around them. The dynamic
/// planner uses this for its full-replan fallback: coloring stays stable
/// across the fallback while repair and verification run from scratch,
/// re-anchoring the carried-over validity chain.
struct WarmStart {
  std::vector<int> seed_colors;
};

/// Colors the conflict graph, repairs, verifies: a complete TDMA schedule
/// for an arbitrary link set under the configured power mode. When `timings`
/// is non-null the conflict/coloring/repair/verify stages are clocked into
/// it. When `warm` is non-null (and sized to the links) the coloring is
/// seeded from it instead of computed from scratch. When `conflict_index` is
/// non-null it must be the maintained index of the store `links` snapshots
/// (dynamic::DynamicPlanner's), and the conflict graph is assembled from
/// index queries instead of a from-scratch grid build — same graph, no O(n)
/// construction.
[[nodiscard]] LinkScheduleResult schedule_links(
    const geom::LinkView& links, const PlannerConfig& config,
    StageTimings* timings = nullptr, const WarmStart* warm = nullptr,
    const conflict::ConflictIndex* conflict_index = nullptr);

/// Full aggregation plan for a pointset.
struct PlanResult {
  mst::AggregationTree tree;
  LinkScheduleResult scheduling;
  /// For kGlobal: log2 power vector per slot (aligned with schedule slots).
  std::vector<sinr::PowerAssignment> slot_powers;

  [[nodiscard]] const schedule::Schedule& schedule() const {
    return scheduling.schedule;
  }
  [[nodiscard]] double rate() const { return scheduling.rate(); }
  [[nodiscard]] bool verified() const { return scheduling.verification.ok(); }
};

/// The paper's end-to-end protocol: build the tree (MST by default), choose
/// powers for the mode, color the matching conflict graph, repair and verify.
/// Throws std::invalid_argument on malformed inputs (duplicate points, < 2
/// points, sink out of range). When `timings` is non-null every stage is
/// clocked into it; the plan itself is unaffected.
[[nodiscard]] PlanResult plan_aggregation(const geom::Pointset& points,
                                          const PlannerConfig& config,
                                          StageTimings* timings = nullptr);

}  // namespace wagg::core

#endif  // WAGG_CORE_PLANNER_H
