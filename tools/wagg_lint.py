#!/usr/bin/env python3
"""wagg_lint: house-rule linter for invariants the generic tools can't see.

Rules (see README "Correctness tooling" for the catalogue and rationale):

  stats-struct  New ``struct FooStats`` definitions outside src/obs/ are
                rejected: hot-path metrics belong in obs::Registry (named
                counters/gauges/histograms), not in ad-hoc stat structs —
                the ROADMAP's standing rule since the telemetry spine
                landed. Pre-registry result-report structs (computed after
                the fact, returned by value, no cross-thread mutation) are
                grandfathered by name below.

  wall-clock    Deterministic code (all of src/) must not read wall-clock
                time or C-library randomness: std::chrono::system_clock,
                rand()/srand(), time(...), std::random_device. Timings use
                the monotonic util::Clock; seeded streams use util::rng.
                Plan digests are compared across runs and machines, so a
                wall-clock or nondeterministic-seed dependency is a
                correctness bug, not a style issue.

  naked-new     No naked new/delete in src/: ownership goes through
                make_unique/make_shared/containers. The rare justified use
                (a private constructor make_shared cannot reach) carries an
                allow comment with its reason.

  raw-sync      Raw std::mutex / std::condition_variable / std::lock_guard /
                std::unique_lock / std::scoped_lock are forbidden in src/
                outside util/mutex.h: synchronized code uses the annotated
                util::Mutex / util::MutexLock / util::CondVar wrappers so
                Clang's thread-safety analysis sees every lock.

  class-grid    ClassGrid (and including conflict/class_grid.h) is forbidden
                outside src/conflict/: the per-class endpoint grids are the
                private substrate of ConflictIndex's diff-maintained row
                cache, and an outside reader could observe rows mid-patch or
                bypass the cache's exactness invariant. Other layers go
                through ConflictIndex / conflict_neighbors_bucketed. The one
                allowed exception (mst/point_grid.h borrows the cell_key
                mixer only) carries an allow comment.

Suppression: a line (or the line directly above it) containing
``wagg-lint: allow(<rule>)`` suppresses that rule on that line. Every allow
should carry a short justification after the closing parenthesis.

Usage:
  wagg_lint.py --root <repo>   lint <repo>/src
  wagg_lint.py --self-test     run every rule against its fixture files
  wagg_lint.py FILE...         lint specific files (fixture runner / ad hoc)

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Result-report structs that predate obs::Registry: filled once per
# run/epoch on one thread and returned by value — not mutable hot-path
# telemetry, so they stay. New *Stats types must register metrics instead.
GRANDFATHERED_STATS = {
    "RunningStats",        # util: Welford accumulator, a math helper
    "BatchStats",          # runtime: per-batch result summary
    "SessionStats",        # runtime: per-session result summary
    "ConflictIndexStats",  # conflict: per-epoch engine-local marks,
                           # diffed INTO registry counters by the planner
    "IncrementalMstStats",  # mst: same engine-local-marks pattern
    "PhaseStats",          # distributed: per-phase round accounting
}

ALLOW_RE = re.compile(r"wagg-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> list[str]:
    """Returns the file's lines with comments and string/char literals
    blanked out (structure and line numbers preserved), so rules match only
    real code tokens."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append(" ")
                i += 2
                out.append(" ")
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^()\\ ]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * m.end())
                    i += m.end()
                    continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string" or state == "char":
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out).split("\n")


def allowed_rules(raw_lines: list[str], lineno: int) -> set[str]:
    """Rules suppressed on 1-based line `lineno` (same line or line above)."""
    rules = set()
    for idx in (lineno - 2, lineno - 1):  # 0-based: line above, same line
        if 0 <= idx < len(raw_lines):
            rules.update(ALLOW_RE.findall(raw_lines[idx]))
    return rules


STATS_RE = re.compile(r"\b(?:struct|class)\s+([A-Za-z_0-9]*Stats)\b")
WALL_CLOCK_RES = [
    (re.compile(r"\bsystem_clock\b"),
     "wall-clock time in deterministic code (use util::Clock)"),
    (re.compile(r"\b(?:std::)?s?rand\s*\("),
     "C-library randomness (use util::rng's seeded streams)"),
    (re.compile(r"\brandom_device\b"),
     "nondeterministic seed source (use util::rng's seeded streams)"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall-clock time in deterministic code (use util::Clock)"),
]
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (addr)` placement excluded too
DELETE_RE = re.compile(r"\bdelete\b(?!\s*[;,)\]])")  # skip `= delete;` forms
EQ_DELETE_RE = re.compile(r"=\s*delete\b")
RAW_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b")
CLASS_GRID_RE = re.compile(r"\bClassGrid\b")
# Matched on RAW lines: strip_code blanks string literals, which would hide
# the include path. Anchored so a mention in a comment cannot trip it.
CLASS_GRID_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s*["<](?:[^">]*/)?class_grid\.h[">]')


def lint_file(path: Path, relpath: str, rules: set[str]) -> list[Finding]:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.split("\n")
    code_lines = strip_code(raw)
    findings: list[Finding] = []

    def report(lineno: int, rule: str, message: str) -> None:
        if rule in rules and rule not in allowed_rules(raw_lines, lineno):
            findings.append(Finding(path, lineno, rule, message))

    in_obs = relpath.startswith("src/obs/") or relpath.startswith("obs/")
    is_mutex_header = relpath.endswith("util/mutex.h")
    in_conflict = (relpath.startswith("src/conflict/") or
                   relpath.startswith("conflict/"))

    for idx, line in enumerate(code_lines, start=1):
        if not in_obs:
            for m in STATS_RE.finditer(line):
                name = m.group(1)
                if name not in GRANDFATHERED_STATS:
                    report(idx, "stats-struct",
                           f"ad-hoc stat struct '{name}': register named "
                           "metrics in obs::Registry instead (ROADMAP rule)")
        for pattern, message in WALL_CLOCK_RES:
            if pattern.search(line):
                report(idx, "wall-clock", message)
        stripped_eq_delete = EQ_DELETE_RE.sub("", line)
        if NEW_RE.search(line):
            report(idx, "naked-new",
                   "naked 'new': use make_unique/make_shared or a container")
        if DELETE_RE.search(stripped_eq_delete):
            report(idx, "naked-new",
                   "naked 'delete': ownership must not need manual frees")
        if not is_mutex_header and RAW_SYNC_RE.search(line):
            report(idx, "raw-sync",
                   "raw std sync primitive: use the annotated util::Mutex / "
                   "util::MutexLock / util::CondVar (util/mutex.h)")
        if not in_conflict:
            if CLASS_GRID_RE.search(line):
                report(idx, "class-grid",
                       "ClassGrid outside src/conflict/: the per-class grids "
                       "are ConflictIndex's private row-cache substrate — "
                       "query through ConflictIndex or "
                       "conflict_neighbors_bucketed")
            if CLASS_GRID_INCLUDE_RE.search(raw_lines[idx - 1]):
                report(idx, "class-grid",
                       "including conflict/class_grid.h outside "
                       "src/conflict/: query through ConflictIndex or "
                       "conflict_neighbors_bucketed")
    return findings


ALL_RULES = {"stats-struct", "wall-clock", "naked-new", "raw-sync",
             "class-grid"}


def lint_tree(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    src = root / "src"
    if not src.is_dir():
        print(f"wagg_lint: no src/ under {root}", file=sys.stderr)
        sys.exit(2)
    for path in sorted(src.rglob("*")):
        if path.suffix in (".h", ".cpp", ".cc", ".hpp"):
            rel = path.relative_to(root).as_posix()
            findings.extend(lint_file(path, rel, ALL_RULES))
    return findings


# ------------------------------------------------------------- self-test
# Fixture protocol: every file under tools/lint_fixtures/<rule>/ declares
# its expectations on line 1:
#   // wagg-lint-fixture: <rule> expect=<n>
# The self-test lints the file with ONLY that rule active (fixtures may
# incidentally trip others) and asserts exactly n findings of it.

FIXTURE_RE = re.compile(
    r"//\s*wagg-lint-fixture:\s*([a-z-]+)\s+expect=(\d+)")


def self_test(root: Path) -> int:
    fixtures = root / "tools" / "lint_fixtures"
    if not fixtures.is_dir():
        print(f"wagg_lint: no fixtures under {fixtures}", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    seen_rules = set()
    for path in sorted(fixtures.rglob("*.cpp")):
        first = path.read_text(encoding="utf-8").split("\n", 1)[0]
        m = FIXTURE_RE.search(first)
        if not m:
            print(f"FAIL {path}: missing '// wagg-lint-fixture: <rule> "
                  "expect=<n>' header")
            failures += 1
            continue
        rule, expected = m.group(1), int(m.group(2))
        if rule not in ALL_RULES:
            print(f"FAIL {path}: unknown rule '{rule}'")
            failures += 1
            continue
        seen_rules.add(rule)
        # Fixtures lint as if they lived in src/ (rel path 'src/<name>'),
        # so src-scoped rules apply.
        rel = "src/" + path.name
        got = [f for f in lint_file(path, rel, {rule}) if f.rule == rule]
        checked += 1
        if len(got) != expected:
            print(f"FAIL {path}: rule {rule} expected {expected} findings, "
                  f"got {len(got)}")
            for f in got:
                print(f"  {f}")
            failures += 1
    missing = ALL_RULES - seen_rules
    if missing:
        print(f"FAIL: rules without fixtures: {sorted(missing)}")
        failures += 1
    if failures:
        print(f"wagg_lint self-test: {failures} failure(s) over "
              f"{checked} fixtures")
        return 1
    print(f"wagg_lint self-test: {checked} fixtures, "
          f"{len(seen_rules)} rules, all green")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root; lints <root>/src")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite")
    parser.add_argument("files", nargs="*", type=Path,
                        help="specific files to lint (treated as src/)")
    args = parser.parse_args()

    if args.self_test:
        root = args.root or Path(__file__).resolve().parent.parent
        return self_test(root)

    findings: list[Finding] = []
    if args.files:
        for path in args.files:
            findings.extend(lint_file(path, "src/" + path.name, ALL_RULES))
    else:
        root = args.root or Path(__file__).resolve().parent.parent
        findings.extend(lint_tree(root))

    for finding in findings:
        print(finding)
    if findings:
        print(f"wagg_lint: {len(findings)} finding(s)")
        return 1
    print("wagg_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
