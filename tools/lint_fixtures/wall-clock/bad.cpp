// wagg-lint-fixture: wall-clock expect=4
// Wall-clock and nondeterministic randomness in planning/digest code:
// every line below must be flagged.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double now_ms() {
  auto t = std::chrono::system_clock::now();  // finding 1: wall clock
  (void)t;
  return 0.0;
}

int noisy_seed() {
  std::random_device rd;           // finding 2: nondeterministic seed
  return static_cast<int>(rd());
}

int c_random() { return rand(); }  // finding 3: C-library randomness

long c_time() { return time(nullptr); }  // finding 4: wall clock
