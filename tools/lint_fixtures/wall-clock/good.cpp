// wagg-lint-fixture: wall-clock expect=0
// Negative cases: the monotonic clock and seeded engines are the sanctioned
// tools; identifiers that merely contain the banned substrings don't trip;
// comments and strings are inert.
#include <chrono>
#include <random>

using Clock = std::chrono::steady_clock;  // monotonic: fine

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

unsigned seeded(unsigned seed) {
  std::mt19937_64 rng(seed);  // deterministic seeded engine: fine
  return static_cast<unsigned>(rng());
}

int operand_count(int operands) { return operands; }  // 'rand' mid-word

// system_clock in a comment is inert; so is "rand(" in a string:
const char* kDoc = "never call rand() or system_clock here";

long runtime_ms(long time_budget) { return time_budget; }  // time_ identifier
