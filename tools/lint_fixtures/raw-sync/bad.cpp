// wagg-lint-fixture: raw-sync expect=3
// Raw standard-library synchronization outside util/mutex.h: every line
// below must be flagged (the annotated util wrappers are the only way the
// thread-safety analysis can see the locking story).
#include <condition_variable>
#include <mutex>

struct Mailbox {
  std::mutex mutex;                  // finding 1
  std::condition_variable space_cv;  // finding 2
  int depth = 0;

  void bump() {
    std::lock_guard<std::mutex> lock(mutex);  // finding 3 (one per line)
    ++depth;
  }
};
