// wagg-lint-fixture: raw-sync expect=0
// Negative cases: the annotated wrappers are the sanctioned spelling;
// std::atomic is not a lock; comments and strings are inert.
#include <atomic>

namespace util {
class Mutex {
 public:
  void lock() {}
  void unlock() {}
};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};
}  // namespace util

struct Mailbox {
  util::Mutex mutex;  // annotated wrapper: fine
  std::atomic<int> fast_count{0};  // atomics are not locks
  int depth = 0;

  void bump() {
    util::MutexLock lock(mutex);
    ++depth;
  }
};

// std::mutex in a comment is inert; and in a string:
const char* kDoc = "std::mutex is banned outside util/mutex.h";
