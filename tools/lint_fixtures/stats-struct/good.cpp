// wagg-lint-fixture: stats-struct expect=0
// Negative cases: grandfathered result-report structs keep their names, a
// name merely CONTAINING "Stats" mid-word is untouched, comments and
// strings never match, and an explicit allow with justification passes.

struct BatchStats {  // grandfathered: per-batch result summary
  unsigned long total = 0;
};

struct IncrementalMstStats {  // grandfathered engine-local marks
  unsigned long path_max_swaps = 0;
};

// struct CommentedOutStats { };  -- inert: lives in a comment
const char* kName = "struct StringStats {}";  // inert: lives in a string

struct Statistician {  // "Stats" is not a suffix here
  int id = 0;
};

// wagg-lint: allow(stats-struct) prototype struct, registry wiring tracked
struct PrototypeStats {
  unsigned long events = 0;
};
