// wagg-lint-fixture: stats-struct expect=2
// Ad-hoc stat structs outside src/obs/: hot-path metrics belong in
// obs::Registry. Both definitions below must be flagged.

struct ExecutorStats {  // finding 1: new ad-hoc stat struct
  unsigned long tasks_run = 0;
  unsigned long steals = 0;
};

namespace wagg::runtime {
class QueueStats {  // finding 2: class form is flagged too
 public:
  unsigned long depth_sum = 0;
};
}  // namespace wagg::runtime
