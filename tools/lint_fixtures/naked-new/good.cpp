// wagg-lint-fixture: naked-new expect=0
// Negative cases: smart-pointer factories, deleted special members, the
// word in comments/strings, and a justified allow all pass.
#include <memory>
#include <vector>

struct Node {
  int value = 0;

  Node(const Node&) = delete;             // `= delete` is not a free
  Node& operator=(const Node&) = delete;  // (either spelling position)
  Node() = default;
};

std::unique_ptr<Node> owned() { return std::make_unique<Node>(); }

std::shared_ptr<Node> shared() { return std::make_shared<Node>(); }

std::vector<Node> many(std::size_t n) { return std::vector<Node>(n); }

// "new" in comments is inert: the new MST is a subset of the old edges.
const char* kDoc = "new and delete are banned";  // inert in strings too

class Factory {
 public:
  // Private-constructor escape hatch, justified inline:
  static std::shared_ptr<Factory> make() {
    // wagg-lint: allow(naked-new) private ctor unreachable by make_shared
    return std::shared_ptr<Factory>(new Factory());
  }

 private:
  Factory() = default;
};
