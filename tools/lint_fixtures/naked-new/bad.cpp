// wagg-lint-fixture: naked-new expect=3
// Naked ownership transfers: every line below must be flagged.

struct Node {
  int value = 0;
};

Node* leak_prone() {
  return new Node();  // finding 1: naked new
}

void manual_free(Node* node) {
  delete node;  // finding 2: naked delete
}

void array_free(Node* nodes) {
  delete[] nodes;  // finding 3: naked array delete
}
