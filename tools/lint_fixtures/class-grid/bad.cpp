// wagg-lint-fixture: class-grid expect=3
// ClassGrid reached from outside src/conflict/ (this fixture lints as
// src/bad.cpp): both the include and each type mention must be flagged —
// the per-class grids are ConflictIndex's private row-cache substrate.
#include "conflict/class_grid.h"  // finding 1

namespace wagg::mst {

struct Sidecar {
  conflict::detail::ClassGrid grid;  // finding 2

  int peek() {
    using conflict::detail::ClassGrid;  // finding 3
    return 0;
  }
};

}  // namespace wagg::mst
