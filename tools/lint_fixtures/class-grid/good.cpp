// wagg-lint-fixture: class-grid expect=0
// Negative cases: the sanctioned query paths, the cell_key-only borrow with
// its allow comment, comment/string mentions, and a lookalike identifier.
#include "conflict/conflict_index.h"
#include "conflict/fgraph.h"
// wagg-lint: allow(class-grid) borrows conflict::detail::cell_key only
#include "conflict/class_grid.h"

namespace wagg::mst {

// A comment saying ClassGrid is inert, as is "conflict/class_grid.h" here:
inline const char* kDoc = "ClassGrid stays behind ConflictIndex";

struct PointClassGridded {  // lookalike name must not trip \bClassGrid\b
  int cells = 0;
};

inline std::uint64_t key_of(std::int64_t x, std::int64_t y) {
  return conflict::detail::cell_key(x, y);
}

}  // namespace wagg::mst
